package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTest(t *testing.T, dir string, mutate ...func(*Options)) *Store {
	t.Helper()
	o := Options{Dir: dir, Sync: SyncNever}
	for _, m := range mutate {
		m(&o)
	}
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir())
	val := []byte(`{"report": "fig5", "cpi": 1.94}`)
	mustPut(t, s, "v1/abc", val)
	got, ok := s.Get("v1/abc")
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want the stored bytes", got, ok)
	}
	if _, ok := s.Get("v1/missing"); ok {
		t.Fatal("Get on an absent key reported a hit")
	}
	// Stored results are immutable: re-putting is a no-op, not an
	// overwrite.
	mustPut(t, s, "v1/abc", val)
	st := s.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	vals := map[string][]byte{}
	s := openTest(t, dir)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("v1/key-%03d", i)
		val := bytes.Repeat([]byte{byte(i)}, 100+i)
		vals[key] = val
		mustPut(t, s, key, val)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	rec := s2.Stats().Recovery
	if rec.Entries != 50 || rec.TornTails != 0 || rec.CorruptRecords != 0 {
		t.Fatalf("recovery %+v, want 50 clean entries", rec)
	}
	for _, key := range s2.Keys() {
		got, ok := s2.Get(key)
		if !ok || !bytes.Equal(got, vals[key]) {
			t.Fatalf("%s: Get = %v %v after reopen", key, ok, got)
		}
	}
}

func TestClosedStoreRefusesWork(t *testing.T) {
	s := openTest(t, t.TempDir())
	mustPut(t, s, "v1/a", []byte("x"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v (want idempotent nil)", err)
	}
	if err := s.Put("v1/b", []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, ok := s.Get("v1/a"); ok {
		t.Fatal("Get after Close reported a hit")
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if _, err := s.SweepExcept("v1/"); !errors.Is(err, ErrClosed) {
		t.Fatalf("SweepExcept after Close: %v, want ErrClosed", err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("v1/key-%02d", i), bytes.Repeat([]byte("x"), 64))
	}
	if st := s.Stats(); st.Segments < 4 {
		t.Fatalf("only %d segments after writing %d bytes past a 256-byte bound", st.Segments, s.Stats().LiveBytes)
	}
	for i := 0; i < 20; i++ {
		if _, ok := s.Get(fmt.Sprintf("v1/key-%02d", i)); !ok {
			t.Fatalf("key %d lost across rotation", i)
		}
	}
	s.Close()
	// And every segment recovers.
	s2 := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	if s2.Len() != 20 {
		t.Fatalf("recovered %d entries, want 20", s2.Len())
	}
}

func TestMaxBytesEvictsOldestSegments(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) {
		o.SegmentBytes = 256
		o.MaxBytes = 1024
	})
	for i := 0; i < 64; i++ {
		mustPut(t, s, fmt.Sprintf("v1/key-%02d", i), bytes.Repeat([]byte("x"), 64))
	}
	st := s.Stats()
	if st.DiskBytes > 1024+256 { // one segment of slack while the active one fills
		t.Fatalf("disk bytes %d way above the 1024 bound", st.DiskBytes)
	}
	if st.EvictedSegments == 0 || st.EvictedEntries == 0 {
		t.Fatalf("no eviction recorded: %+v", st)
	}
	// Newest entries survive, oldest are gone.
	if _, ok := s.Get("v1/key-63"); !ok {
		t.Fatal("newest key evicted")
	}
	if _, ok := s.Get("v1/key-00"); ok {
		t.Fatal("oldest key still present despite eviction")
	}
}

func TestSweepExceptDropsStalePrefixAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	old := []byte("old-code result")
	cur := []byte("current result")
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("sim/0/key-%d", i), old)
		mustPut(t, s, fmt.Sprintf("sim/1/key-%d", i), cur)
	}
	dropped, err := s.SweepExcept("sim/1/")
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 8 {
		t.Fatalf("dropped %d, want 8", dropped)
	}
	for i := 0; i < 8; i++ {
		if _, ok := s.Get(fmt.Sprintf("sim/0/key-%d", i)); ok {
			t.Fatal("stale-version entry still served after sweep")
		}
		got, ok := s.Get(fmt.Sprintf("sim/1/key-%d", i))
		if !ok || !bytes.Equal(got, cur) {
			t.Fatal("current-version entry lost by sweep")
		}
	}
	if st := s.Stats(); st.Recovery.SweptEntries != 8 {
		t.Fatalf("swept %d, want 8: %+v", st.Recovery.SweptEntries, st)
	}
	// Idempotent: nothing left to drop.
	if dropped, err := s.SweepExcept("sim/1/"); err != nil || dropped != 0 {
		t.Fatalf("second sweep: %d, %v", dropped, err)
	}
	s.Close()
	// The swept entries are gone on disk too, not just unindexed.
	s2 := openTest(t, dir)
	if got := s2.Len(); got != 8 {
		t.Fatalf("reopen found %d entries, want 8 (sweep must persist)", got)
	}
}

// TestSweepCompactsSealedSegments forces the stale entries into sealed
// segments so the sweep's tmp+rename compaction path runs.
func TestSweepCompactsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("sim/0/key-%d", i), bytes.Repeat([]byte("o"), 64))
		mustPut(t, s, fmt.Sprintf("sim/1/key-%d", i), bytes.Repeat([]byte("c"), 64))
	}
	before := s.Stats().DiskBytes
	dropped, err := s.SweepExcept("sim/1/")
	if err != nil || dropped != 10 {
		t.Fatalf("sweep: %d, %v", dropped, err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.DiskBytes >= before {
		t.Fatalf("disk bytes %d not reclaimed (was %d)", st.DiskBytes, before)
	}
	for i := 0; i < 10; i++ {
		got, ok := s.Get(fmt.Sprintf("sim/1/key-%d", i))
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte("c"), 64)) {
			t.Fatalf("live key %d damaged by compaction", i)
		}
	}
	// No .tmp litter.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("compaction left tmp files: %v", tmps)
	}
}

// TestTornWriteRecovery is the table-driven crash matrix: a segment cut
// at every interesting byte boundary of its final record must recover
// every earlier record and drop the torn one.
func TestTornWriteRecovery(t *testing.T) {
	const keep = 5
	lastKey := fmt.Sprintf("v1/key-%d", keep)
	build := func(t *testing.T) (dir string, lastRecSize int64, fileSize int64) {
		dir = t.TempDir()
		s := openTest(t, dir)
		for i := 0; i < keep; i++ {
			mustPut(t, s, fmt.Sprintf("v1/key-%d", i), bytes.Repeat([]byte{byte(i)}, 50))
		}
		mustPut(t, s, lastKey, bytes.Repeat([]byte("z"), 50))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := encodeRecord(lastKey, bytes.Repeat([]byte("z"), 50))
		if err != nil {
			t.Fatal(err)
		}
		seg := segFiles(t, dir)[0]
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		return dir, int64(len(rec)), fi.Size()
	}

	cases := []struct {
		name string
		cut  int64 // bytes cut off the end of the last record
	}{
		{"one byte short", 1},
		{"half the body", 30},
		{"body entirely missing", 50},
		{"mid header", 0}, // filled in below: leave 4 header bytes
		{"only magic", 0}, // leave 4 bytes
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, recSize, fileSize := build(t)
			cut := tc.cut
			switch i {
			case 3:
				cut = recSize - headerSize/2
			case 4:
				cut = recSize - 4
			}
			seg := segFiles(t, dir)[0]
			if err := os.Truncate(seg, fileSize-cut); err != nil {
				t.Fatal(err)
			}
			s := openTest(t, dir)
			rec := s.Stats().Recovery
			if rec.Entries != keep || rec.TornTails != 1 {
				t.Fatalf("recovery %+v, want %d entries and 1 torn tail", rec, keep)
			}
			if rec.TornBytes != recSize-cut {
				t.Fatalf("torn bytes %d, want %d", rec.TornBytes, recSize-cut)
			}
			if _, ok := s.Get(lastKey); ok {
				t.Fatal("torn record served")
			}
			for j := 0; j < keep; j++ {
				got, ok := s.Get(fmt.Sprintf("v1/key-%d", j))
				if !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(j)}, 50)) {
					t.Fatalf("record %d lost or damaged by tail truncation", j)
				}
			}
			// The torn tail was truncated off: appends resume cleanly.
			mustPut(t, s, "v1/after-crash", []byte("new"))
			s.Close()
			s2 := openTest(t, dir)
			if rec := s2.Stats().Recovery; rec.TornTails != 0 || rec.Entries != keep+1 {
				t.Fatalf("second recovery %+v: first one left a mess", rec)
			}
		})
	}
}

// TestCorruptCRCRecovery covers bit rot: a flipped byte in a record's
// body must fail the CRC, drop the record, and never be served.
func TestCorruptCRCRecovery(t *testing.T) {
	t.Run("mid segment at recovery", func(t *testing.T) {
		// Two segments; corrupt the first (sealed) one. Recovery counts
		// a corrupt record, keeps records before the damage, and keeps
		// the later segment whole.
		dir := t.TempDir()
		s := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
		for i := 0; i < 12; i++ {
			mustPut(t, s, fmt.Sprintf("v1/key-%02d", i), bytes.Repeat([]byte{byte('a' + i)}, 64))
		}
		nseg := s.Stats().Segments
		if nseg < 3 {
			t.Fatalf("want >= 3 segments, got %d", nseg)
		}
		s.Close()

		first := segFiles(t, dir)[0]
		data, err := os.ReadFile(first)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte in the SECOND record's body so the first record
		// still proves "records before the damage survive".
		_, _, rec0, err := decodeRecord(data)
		if err != nil {
			t.Fatal(err)
		}
		data[rec0+headerSize+20] ^= 0xFF
		if err := os.WriteFile(first, data, 0o644); err != nil {
			t.Fatal(err)
		}

		s2 := openTest(t, dir, func(o *Options) { o.SegmentBytes = 256 })
		rec := s2.Stats().Recovery
		if rec.CorruptRecords != 1 {
			t.Fatalf("recovery %+v, want exactly 1 corrupt record", rec)
		}
		if got, ok := s2.Get("v1/key-00"); !ok || !bytes.Equal(got, bytes.Repeat([]byte{'a'}, 64)) {
			t.Fatal("record before the corruption lost")
		}
		if _, ok := s2.Get("v1/key-01"); ok {
			t.Fatal("corrupt record served")
		}
		if got, ok := s2.Get("v1/key-11"); !ok || len(got) != 64 {
			t.Fatal("later segment damaged by earlier segment's corruption")
		}
	})

	t.Run("at read time", func(t *testing.T) {
		// Corruption that appears while the store is open (bit rot
		// under a running daemon) is caught by the read-path CRC.
		dir := t.TempDir()
		s := openTest(t, dir)
		mustPut(t, s, "v1/rot", bytes.Repeat([]byte("r"), 128))
		s.Flush()
		seg := segFiles(t, dir)[0]
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[headerSize+30] ^= 0x01
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get("v1/rot"); ok {
			t.Fatal("corrupt bytes served")
		}
		st := s.Stats()
		if st.Corruptions != 1 {
			t.Fatalf("corruptions %d, want 1", st.Corruptions)
		}
		if _, ok := s.Get("v1/rot"); ok {
			t.Fatal("corrupt record resurrected")
		}
	})
}

// TestRecoveryRemovesTmpLitter simulates a crash mid-compaction: a
// leftover .tmp file must be deleted, with the original segment still
// authoritative.
func TestRecoveryRemovesTmpLitter(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	mustPut(t, s, "v1/a", []byte("alive"))
	s.Close()
	tmp := filepath.Join(dir, "00000001.seg.tmp")
	if err := os.WriteFile(tmp, []byte("half-finished compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	if got, ok := s2.Get("v1/a"); !ok || string(got) != "alive" {
		t.Fatal("original segment lost")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("tmp litter survived recovery: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{},
		{Dir: "x", MaxBytes: -1},
		{Dir: "x", SegmentBytes: 4},
		{Dir: "x", SyncEvery: -1},
		{Dir: "x", Sync: "sometimes"},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{Dir: t.TempDir()}).Validate(); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
	if _, err := ParseSyncPolicy("always"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSyncPolicy("continuously"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestRecordBounds(t *testing.T) {
	s := openTest(t, t.TempDir())
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte("k"), maxKeyLen+1)), []byte("x")); err == nil {
		t.Error("oversized key accepted")
	}
	if st := s.Stats(); st.PutErrors != 2 {
		t.Errorf("put errors %d, want 2", st.PutErrors)
	}
}
