package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk record framing, little-endian:
//
//	offset  0: magic   uint32 ("GaAS")
//	offset  4: crc     uint32  IEEE CRC32 over bytes [8, end)
//	offset  8: keyLen  uint16
//	offset 10: valLen  uint32
//	offset 14: key     keyLen bytes
//	       ...: val     valLen bytes
//
// The CRC covers the length fields as well as the payload, so a torn
// header cannot redirect the scanner into the middle of a value. A
// record is only ever appended whole (one Write call); everything else
// — torn tails from a crash mid-append, bit rot, truncation — fails the
// magic, length, or CRC check and is dropped rather than served.
const (
	recordMagic = 0x53416147 // "GaAS" as a little-endian uint32
	headerSize  = 14
	maxKeyLen   = 1<<16 - 1
	// maxValLen bounds one stored result body. Sweep outputs are tens
	// of kilobytes; 64 MiB is far above any legitimate record and keeps
	// a corrupt length field from driving a giant allocation during
	// recovery.
	maxValLen = 64 << 20
)

// errTornRecord marks a record cut short (crash mid-append); it is
// distinguished from ErrCorrupt so recovery can count the two failure
// modes separately.
var errTornRecord = fmt.Errorf("store: torn record: %w", ErrCorrupt)

// encodeRecord frames one key/value pair.
func encodeRecord(key string, val []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return nil, fmt.Errorf("store: key length %d out of range [1,%d]", len(key), maxKeyLen)
	}
	if len(val) > maxValLen {
		return nil, fmt.Errorf("store: value %d bytes exceeds limit %d", len(val), maxValLen)
	}
	rec := make([]byte, headerSize+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:], recordMagic)
	binary.LittleEndian.PutUint16(rec[8:], uint16(len(key)))
	binary.LittleEndian.PutUint32(rec[10:], uint32(len(val)))
	copy(rec[headerSize:], key)
	copy(rec[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[8:]))
	return rec, nil
}

// decodeRecord parses the record at the start of data, returning the
// key, the value (aliasing data), and the total encoded size. A short
// buffer returns errTornRecord; a framing or checksum failure returns
// an error wrapping ErrCorrupt.
func decodeRecord(data []byte) (key string, val []byte, size int64, err error) {
	if len(data) < headerSize {
		return "", nil, 0, errTornRecord
	}
	if binary.LittleEndian.Uint32(data[0:]) != recordMagic {
		return "", nil, 0, fmt.Errorf("store: bad record magic %#x: %w",
			binary.LittleEndian.Uint32(data[0:]), ErrCorrupt)
	}
	keyLen := int(binary.LittleEndian.Uint16(data[8:]))
	valLen := int(binary.LittleEndian.Uint32(data[10:]))
	if keyLen == 0 || valLen > maxValLen {
		return "", nil, 0, fmt.Errorf("store: implausible record lengths key=%d val=%d: %w",
			keyLen, valLen, ErrCorrupt)
	}
	total := headerSize + keyLen + valLen
	if len(data) < total {
		return "", nil, 0, errTornRecord
	}
	if crc := crc32.ChecksumIEEE(data[8:total]); crc != binary.LittleEndian.Uint32(data[4:]) {
		return "", nil, 0, fmt.Errorf("store: CRC mismatch (stored %#x, computed %#x): %w",
			binary.LittleEndian.Uint32(data[4:]), crc, ErrCorrupt)
	}
	return string(data[headerSize : headerSize+keyLen]),
		data[headerSize+keyLen : total], int64(total), nil
}
