package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRead throws arbitrary bytes at the two read paths an
// attacker-free world still exercises after a crash: the record decoder
// and segment recovery. The invariants are the store's whole contract —
// no panic on any input, a decoded record round-trips exactly, and
// after recovery every indexed key is readable with a valid CRC.
func FuzzStoreRead(f *testing.F) {
	good, err := encodeRecord("v1/seed", []byte("seed value"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])                   // torn tail
	f.Add(append([]byte{}, good...))            // clean single record
	f.Add(append(append([]byte{}, good...), 0)) // trailing garbage byte
	f.Add([]byte{})
	f.Add([]byte{0x47, 0x61, 0x41, 0x53}) // magic alone
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-1] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder: must never panic, and a success must be internally
		// consistent and re-encode to the same bytes.
		key, val, size, err := decodeRecord(data)
		if err == nil {
			if size <= 0 || size > int64(len(data)) {
				t.Fatalf("decode claimed size %d from %d input bytes", size, len(data))
			}
			re, rerr := encodeRecord(key, val)
			if rerr != nil {
				t.Fatalf("decoded record does not re-encode: %v", rerr)
			}
			if !bytes.Equal(re, data[:size]) {
				t.Fatal("decode/encode round trip changed the bytes")
			}
		}

		// Recovery: write the raw bytes as a segment file and open the
		// store over it. Whatever survives recovery must be servable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open over fuzzed segment: %v", err)
		}
		defer s.Close()
		for _, key := range s.Keys() {
			if _, ok := s.Get(key); !ok {
				t.Fatalf("recovered key %q is not readable", key)
			}
		}
		// The store must stay writable after any recovery outcome.
		if err := s.Put("v1/after", []byte("post-recovery write")); err != nil {
			t.Fatalf("Put after recovery: %v", err)
		}
		if got, ok := s.Get("v1/after"); !ok || string(got) != "post-recovery write" {
			t.Fatal("post-recovery write not readable")
		}
	})
}
