// Package client is the resilient HTTP client shared by everything
// that talks to a cachesimd daemon (cmd/simload today, the distributed
// sweep fabric next). It exists because the server deliberately sheds
// load — 429 when the admission queue is full, 503 while draining — and
// a client that treats those as hard failures turns graceful
// degradation into an outage. Three standard mechanisms, composed:
//
//   - retries with exponential backoff and full jitter, honoring a
//     Retry-After header on 429/503 so the server's own pacing wins;
//   - a per-attempt deadline, so one wedged request cannot absorb the
//     whole retry budget;
//   - a circuit breaker per endpoint: after enough consecutive failures
//     against one server the client fails fast for a cooldown instead
//     of hammering it, then lets one probe through (half-open) to test
//     recovery. Breakers are keyed by scheme://host, so in a cluster
//     one bad worker trips its own circuit without blacklisting the
//     rest of the ring (the coordinator depends on this isolation).
//
// Retrying is sound here for the same reason caching is: results are
// content-addressed and deterministic, so a replayed request is
// idempotent by construction.
package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrBreakerOpen fails a call fast while the circuit is open.
	ErrBreakerOpen = errors.New("client: circuit breaker open")
	// ErrExhausted wraps the final attempt's error once the retry
	// budget is spent.
	ErrExhausted = errors.New("client: retries exhausted")
)

// Options tunes the client. Zero values take the documented defaults.
type Options struct {
	// MaxAttempts bounds tries per call, first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 100ms); the
	// delay before attempt k is jittered in [base<<k / 2, base<<k].
	BaseBackoff time.Duration
	// MaxBackoff caps any single delay, including server-requested
	// Retry-After waits (default 5s).
	MaxBackoff time.Duration
	// AttemptTimeout is the per-attempt deadline (default 2 minutes).
	AttemptTimeout time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// call failures (default 8; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe (default 2s).
	BreakerCooldown time.Duration
	// Seed drives the jitter PRNG; calls with the same seed and
	// outcome sequence back off identically (default 1).
	Seed uint64
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = 2 * time.Minute
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.MaxAttempts < 1 || o.MaxAttempts > 100 {
		return fmt.Errorf("client: max attempts must be in [1,100] (got %d)", o.MaxAttempts)
	}
	if o.BaseBackoff < 0 || o.MaxBackoff < o.BaseBackoff {
		return fmt.Errorf("client: bad backoff bounds (base=%v max=%v)", o.BaseBackoff, o.MaxBackoff)
	}
	if o.AttemptTimeout <= 0 {
		return fmt.Errorf("client: attempt timeout must be > 0 (got %v)", o.AttemptTimeout)
	}
	return nil
}

// Result is one successful (2xx) response, body fully read.
type Result struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int
}

// Stats counts what resilience cost: how often the client retried,
// slept on a server's Retry-After, or failed fast on an open breaker.
// Breaker counters aggregate over every endpoint the client has talked
// to; BreakerStates breaks them out per endpoint.
type Stats struct {
	Calls          uint64 `json:"calls"`
	Attempts       uint64 `json:"attempts"`
	Retries        uint64 `json:"retries"`
	RetryAfterObey uint64 `json:"retry_after_obeyed"`
	BreakerRejects uint64 `json:"breaker_rejects"`
	BreakerOpens   uint64 `json:"breaker_opens"`
}

type breakerPhase int

const (
	breakerClosed breakerPhase = iota
	breakerOpen
	breakerHalfOpen
)

func (p breakerPhase) String() string {
	switch p {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the circuit state of one endpoint. All fields are guarded
// by the owning Client's mutex.
type breaker struct {
	phase    breakerPhase
	failures int       // consecutive failed calls
	openedAt time.Time // when the circuit opened
	probing  bool      // a half-open probe is in flight
	rejects  uint64
	opens    uint64
}

// BreakerState is the externally visible circuit state of one endpoint,
// reported by BreakerStates (and surfaced per worker on the
// coordinator's /v1/cluster).
type BreakerState struct {
	Endpoint string `json:"endpoint"`
	Phase    string `json:"phase"` // closed | open | half-open
	Failures int    `json:"consecutive_failures"`
	Opens    uint64 `json:"opens"`
	Rejects  uint64 `json:"rejects"`
}

// splitmix64 is the repo's deterministic PRNG (see
// internal/faultinject); used here for backoff jitter so load-test runs
// replay the same schedule from the same seed.
type splitmix64 struct{ state uint64 }

func (r *splitmix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Client is a resilient HTTP caller. Safe for concurrent use.
type Client struct {
	opts Options

	mu       sync.Mutex
	rng      splitmix64
	breakers map[string]*breaker // endpoint (scheme://host) -> circuit
	stats    Stats

	// Injectable clocks for tests.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
}

// New builds a client with validated options.
func New(o Options) (*Client, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	return &Client{
		opts:     o,
		rng:      splitmix64{state: o.Seed},
		breakers: make(map[string]*breaker),
		//lint:allow determinism breaker cooldowns are operational timing, never part of a result body
		now:   func() time.Time { return time.Now() },
		sleep: sleepCtx,
	}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: backoff interrupted: %w", ctx.Err())
	}
}

// Stats snapshots the resilience counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// BreakerStates snapshots every endpoint's circuit, sorted by endpoint
// so the report order is stable.
func (c *Client) BreakerStates() []BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	eps := make([]string, 0, len(c.breakers))
	//lint:allow determinism keys are collected and sorted below
	for ep := range c.breakers {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	states := make([]BreakerState, 0, len(eps))
	for _, ep := range eps {
		b := c.breakers[ep]
		states = append(states, BreakerState{
			Endpoint: ep,
			Phase:    b.phase.String(),
			Failures: b.failures,
			Opens:    b.opens,
			Rejects:  b.rejects,
		})
	}
	return states
}

// Endpoint reduces a request URL to its breaker key: the server it
// names (scheme://host). Exported so the fabric coordinator can join
// its per-worker view (worker addr) with this client's per-endpoint
// breaker states.
func Endpoint(rawurl string) string { return endpointOf(rawurl) }

// endpointOf reduces a request URL to its breaker key: the server it
// names (scheme://host). Every path on one server shares a circuit;
// distinct servers never share one. An unparseable URL falls back to
// the raw string — it still gets a consistent (if over-precise) key.
func endpointOf(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil || u.Host == "" {
		return rawurl
	}
	return u.Scheme + "://" + u.Host
}

// breakerFor returns the endpoint's circuit, creating a closed one on
// first contact. Caller must hold c.mu.
func (c *Client) breakerFor(endpoint string) *breaker {
	b, ok := c.breakers[endpoint]
	if !ok {
		b = &breaker{}
		c.breakers[endpoint] = b
	}
	return b
}

// PostJSON posts body to url with retries, per-attempt deadlines, and
// the circuit breaker; it returns the first 2xx response. Non-retryable
// statuses (4xx other than 429) return an error immediately.
func (c *Client) PostJSON(ctx context.Context, url string, body []byte) (Result, error) {
	return c.call(ctx, endpointOf(url), func(actx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("client: build request: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
}

// Get fetches url under the same resilience policy as PostJSON.
func (c *Client) Get(ctx context.Context, url string) (Result, error) {
	return c.call(ctx, endpointOf(url), func(actx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		if err != nil {
			return nil, fmt.Errorf("client: build request: %w", err)
		}
		return req, nil
	})
}

func (c *Client) call(ctx context.Context, endpoint string, build func(context.Context) (*http.Request, error)) (Result, error) {
	if err := c.admit(endpoint); err != nil {
		return Result{}, err
	}
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()

		res, retryable, wait, err := c.attempt(ctx, build)
		if err == nil {
			res.Attempts = attempt + 1
			c.settle(endpoint, true)
			return res, nil
		}
		lastErr = err
		if !retryable || attempt == c.opts.MaxAttempts-1 {
			break
		}
		if err := c.sleep(ctx, c.backoff(attempt, wait)); err != nil {
			lastErr = err
			break
		}
	}
	c.settle(endpoint, false)
	return Result{}, fmt.Errorf("%w: %w", ErrExhausted, lastErr)
}

// attempt runs one HTTP exchange under the per-attempt deadline,
// classifying the outcome: retryable or not, plus any server-requested
// wait from a Retry-After header.
func (c *Client) attempt(ctx context.Context, build func(context.Context) (*http.Request, error)) (res Result, retryable bool, wait time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	req, err := build(actx)
	if err != nil {
		return Result{}, false, 0, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		// Transport errors (connection refused, reset, attempt
		// deadline) are retryable unless the caller's own context is
		// done.
		return Result{}, ctx.Err() == nil, 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Result{}, ctx.Err() == nil, 0, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return Result{Status: resp.StatusCode, Header: resp.Header, Body: data}, false, 0, nil
	}
	err = fmt.Errorf("client: server returned %d: %s", resp.StatusCode, truncate(data, 200))
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		wait = c.retryAfter(resp.Header)
		return Result{}, true, wait, err
	case http.StatusBadGateway, http.StatusGatewayTimeout:
		return Result{}, true, 0, err
	}
	return Result{}, false, 0, err
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date),
// capped at MaxBackoff.
func (c *Client) retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		d = t.Sub(c.now())
	}
	if d <= 0 {
		return 0
	}
	if d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	c.stats.RetryAfterObey++
	c.mu.Unlock()
	return d
}

// backoff computes the delay before retrying attempt (0-based): the
// server's Retry-After when given, otherwise exponential with full
// jitter in [d/2, d].
func (c *Client) backoff(attempt int, serverWait time.Duration) time.Duration {
	if serverWait > 0 {
		return serverWait
	}
	d := c.opts.BaseBackoff << uint(attempt)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	f := c.rng.float()
	c.mu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// admit applies the endpoint's circuit breaker at call entry.
func (c *Client) admit(endpoint string) error {
	if c.opts.BreakerThreshold < 0 {
		c.mu.Lock()
		c.stats.Calls++
		c.mu.Unlock()
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Calls++
	b := c.breakerFor(endpoint)
	switch b.phase {
	case breakerClosed:
		return nil
	case breakerOpen:
		if c.now().Sub(b.openedAt) >= c.opts.BreakerCooldown {
			b.phase = breakerHalfOpen
			b.probing = true
			return nil // this call is the probe
		}
	case breakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	b.rejects++
	c.stats.BreakerRejects++
	return fmt.Errorf("%w: %s (cooldown %v)", ErrBreakerOpen, endpoint, c.opts.BreakerCooldown)
}

// settle records a call outcome in the endpoint's breaker.
func (c *Client) settle(endpoint string, ok bool) {
	if c.opts.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakerFor(endpoint)
	b.probing = false
	if ok {
		b.failures = 0
		b.phase = breakerClosed
		return
	}
	b.failures++
	if b.phase == breakerHalfOpen || b.failures >= c.opts.BreakerThreshold {
		if b.phase != breakerOpen {
			b.opens++
			c.stats.BreakerOpens++
		}
		b.phase = breakerOpen
		b.openedAt = c.now()
		b.failures = 0
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
