package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient builds a client with instant sleeps and a controllable
// clock so breaker cooldowns advance without real waiting.
func newTestClient(t *testing.T, o Options) (*Client, *time.Time) {
	t.Helper()
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	c.now = func() time.Time { return clock }
	c.sleep = func(ctx context.Context, d time.Duration) error {
		clock = clock.Add(d)
		return ctx.Err()
	}
	return c, &clock
}

func TestSuccessFirstTry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hit")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	c, _ := newTestClient(t, Options{})
	res, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Status != 200 || string(res.Body) != `{"ok":true}` {
		t.Fatalf("res = %+v", res)
	}
	if res.Header.Get("X-Cache") != "hit" {
		t.Fatal("headers not propagated")
	}
	st := c.Stats()
	if st.Calls != 1 || st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryAfterIsHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("done"))
	}))
	defer srv.Close()

	c, _ := newTestClient(t, Options{})
	var slept []time.Duration
	base := c.sleep
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return base(ctx, d)
	}
	res, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	for i, d := range slept {
		if d != 2*time.Second {
			t.Fatalf("sleep %d = %v, want the server's 2s Retry-After", i, d)
		}
	}
	if st := c.Stats(); st.RetryAfterObey != 2 || st.Retries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryAfterCappedAtMaxBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, Options{MaxAttempts: 2, MaxBackoff: time.Second})
	var slept time.Duration
	base := c.sleep
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = d
		return base(ctx, d)
	}
	if _, err := c.Get(context.Background(), srv.URL); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if slept != time.Second {
		t.Fatalf("slept %v, want the 1s MaxBackoff cap", slept)
	}
}

func TestExhaustionWrapsLastError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, Options{MaxAttempts: 3})
	_, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, Options{MaxAttempts: 5})
	if _, err := c.PostJSON(context.Background(), srv.URL, []byte(`x`)); err == nil {
		t.Fatal("400 must fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 retried: server saw %d attempts", got)
	}
}

func TestTransportErrorsRetry(t *testing.T) {
	// A server that is down: connection refused is retryable.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()
	c, _ := newTestClient(t, Options{MaxAttempts: 3})
	if _, err := c.Get(context.Background(), url); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted after retrying refused connections", err)
	}
	if st := c.Stats(); st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
}

func TestBreakerOpensFailsFastThenRecovers(t *testing.T) {
	var healthy atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c, clock := newTestClient(t, Options{
		MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 2 * time.Second,
	})
	ctx := context.Background()

	// Three failed calls open the circuit.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrExhausted) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1: %+v", st.BreakerOpens, st)
	}

	// While open, calls fail fast without touching the server.
	before := calls.Load()
	if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker let a call through: %v", err)
	}
	if calls.Load() != before {
		t.Fatal("fast-failed call still reached the server")
	}

	// After the cooldown a probe goes through; server still down, so the
	// circuit re-opens.
	*clock = clock.Add(3 * time.Second)
	if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrExhausted) {
		t.Fatalf("probe: %v", err)
	}
	if calls.Load() != before+1 {
		t.Fatal("half-open probe did not reach the server")
	}
	if _, err := c.Get(ctx, srv.URL); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe must re-open the circuit: %v", err)
	}

	// Server recovers; next probe closes the circuit for good.
	healthy.Store(true)
	*clock = clock.Add(3 * time.Second)
	if res, err := c.Get(ctx, srv.URL); err != nil || string(res.Body) != "ok" {
		t.Fatalf("recovery probe: %v", err)
	}
	if res, err := c.Get(ctx, srv.URL); err != nil || string(res.Body) != "ok" {
		t.Fatalf("closed circuit: %v", err)
	}
	if st := c.Stats(); st.BreakerRejects != 2 {
		t.Fatalf("breaker rejects = %d, want 2: %+v", st.BreakerRejects, st)
	}
}

// TestBreakerIsolationPerEndpoint pins the cluster-critical property:
// circuits are per endpoint, so one dead worker trips its own breaker
// while calls to a healthy worker keep flowing — and the healthy
// worker's successes never reset the dead worker's failure count.
func TestBreakerIsolationPerEndpoint(t *testing.T) {
	var healthyCalls, deadCalls atomic.Int64
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthyCalls.Add(1)
		w.Write([]byte("ok"))
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadCalls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer dead.Close()

	c, _ := newTestClient(t, Options{MaxAttempts: 1, BreakerThreshold: 3})
	ctx := context.Background()

	// Interleave: failures against dead must accumulate even though
	// healthy keeps succeeding in between.
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, dead.URL); !errors.Is(err, ErrExhausted) {
			t.Fatalf("dead call %d: %v", i, err)
		}
		if _, err := c.Get(ctx, healthy.URL); err != nil {
			t.Fatalf("healthy call %d: %v", i, err)
		}
	}
	if st := c.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want exactly the dead endpoint's: %+v", st.BreakerOpens, st)
	}

	// The dead endpoint fails fast; the healthy one is untouched by it.
	if _, err := c.Get(ctx, dead.URL); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("dead endpoint circuit not open: %v", err)
	}
	before := healthyCalls.Load()
	if _, err := c.Get(ctx, healthy.URL); err != nil {
		t.Fatalf("healthy endpoint caught the dead one's breaker: %v", err)
	}
	if healthyCalls.Load() != before+1 {
		t.Fatal("healthy call did not reach its server")
	}

	states := c.BreakerStates()
	if len(states) != 2 {
		t.Fatalf("breaker states = %d endpoints, want 2: %+v", len(states), states)
	}
	byEp := map[string]BreakerState{}
	for _, s := range states {
		byEp[s.Endpoint] = s
	}
	if s := byEp[endpointOf(dead.URL)]; s.Phase != "open" || s.Opens != 1 || s.Rejects != 1 {
		t.Fatalf("dead endpoint state %+v", s)
	}
	if s := byEp[endpointOf(healthy.URL)]; s.Phase != "closed" || s.Opens != 0 {
		t.Fatalf("healthy endpoint state %+v", s)
	}
}

func TestEndpointOf(t *testing.T) {
	cases := [][2]string{
		{"http://localhost:8344/v1/sweep", "http://localhost:8344"},
		{"http://localhost:8344/v1/sim", "http://localhost:8344"},
		{"https://a.example:9/x?y=z", "https://a.example:9"},
		{"not a url", "not a url"},
	}
	for _, c := range cases {
		if got := endpointOf(c[0]); got != c[1] {
			t.Errorf("endpointOf(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	if endpointOf("http://h:1/a") == endpointOf("http://h:2/a") {
		t.Error("distinct ports must be distinct endpoints")
	}
}

func TestBreakerDisabled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, _ := newTestClient(t, Options{MaxAttempts: 1, BreakerThreshold: -1})
	for i := 0; i < 20; i++ {
		if _, err := c.Get(context.Background(), srv.URL); errors.Is(err, ErrBreakerOpen) {
			t.Fatal("disabled breaker opened")
		}
	}
}

func TestAttemptDeadline(t *testing.T) {
	release := make(chan struct{})
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			<-release // wedge the first attempt past its deadline
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	defer close(release)

	c, err := New(Options{MaxAttempts: 2, AttemptTimeout: 50 * time.Millisecond, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Get(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("second attempt should have rescued the call: %v", err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("call took %v; the wedged attempt was not cut off", took)
	}
}

func TestCanceledContextStopsRetrying(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, err := New(Options{MaxAttempts: 50, BaseBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Get(ctx, srv.URL); err == nil {
		t.Fatal("want error after context cancel")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("retry loop outlived its context by %v", took)
	}
}

func TestBackoffScheduleIsSeedDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		c, err := New(Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var ds []time.Duration
		for i := 0; i < 8; i++ {
			ds = append(ds, c.backoff(i%4, 0))
		}
		return ds
	}
	a, b := schedule(9), schedule(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter at %d: %v vs %v", i, a[i], b[i])
		}
		base := 100 * time.Millisecond << uint(i%4)
		if a[i] < base/2 || a[i] > base {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MaxAttempts: 101},
		{BaseBackoff: 2 * time.Second, MaxBackoff: time.Second},
		{AttemptTimeout: -time.Second},
	}
	for _, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if _, err := New(Options{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
