package stackdist

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Filter-cache line flags, mirroring the core simulator's cache model
// bit for bit so the filter's miss stream matches the cycle-accurate
// L1's miss stream reference for reference.
const (
	fValid     = 1 << 0
	fDirty     = 1 << 1
	fWriteOnly = 1 << 2
)

const fTagInvalid = ^uint64(0)

// filterCache is a functional (untimed) replica of core's internal
// set-associative cache: same flags, same LRU bookkeeping (exact for
// the 1- and 2-way geometries the paper sweeps), same invalid-first
// victim choice. It models only state, never cycles — its job is to
// turn the L1 reference stream into the L2 reference stream.
type filterCache struct {
	geom    core.CacheGeom
	sets    int
	ways    int
	setMask uint64
	offBits uint

	tags   []uint64
	flags  []uint8
	masks  []uint32 // per-word valid bits (Subblock policy)
	lruWay []uint8  // MRU way per set (ways > 1)

	fullMask uint32
}

func newFilterCache(geom core.CacheGeom) *filterCache {
	sets := geom.SizeWords / (geom.LineWords * geom.Ways)
	c := &filterCache{
		geom:     geom,
		sets:     sets,
		ways:     geom.Ways,
		setMask:  uint64(sets) - 1,
		offBits:  log2(uint64(geom.LineWords * trace.WordBytes)),
		tags:     make([]uint64, sets*geom.Ways),
		flags:    make([]uint8, sets*geom.Ways),
		masks:    make([]uint32, sets*geom.Ways),
		lruWay:   make([]uint8, sets),
		fullMask: uint32(1)<<uint(geom.LineWords) - 1,
	}
	for i := range c.tags {
		c.tags[i] = fTagInvalid
	}
	return c
}

func (c *filterCache) lineAddr(addr uint64) uint64 { return addr >> c.offBits }

func (c *filterCache) wordOf(addr uint64) uint {
	return uint(addr>>2) & uint(c.geom.LineWords-1)
}

// find returns the slot holding line, or -1.
func (c *filterCache) find(line uint64) int {
	base := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			return base + w
		}
	}
	return -1
}

// touch marks slot most-recently-used in its set.
func (c *filterCache) touch(slot int) {
	if c.ways > 1 {
		c.lruWay[slot/c.ways] = uint8(slot % c.ways)
	}
}

// victimSlot picks the replacement slot for line's set: an invalid way
// if any, else LRU (exact for 1- and 2-way, round-robin beyond) —
// identical to the core simulator's choice.
func (c *filterCache) victimSlot(line uint64) int {
	set := int(line & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == fTagInvalid {
			return base + w
		}
	}
	switch c.ways {
	case 1:
		return base
	case 2:
		return base + (1 - int(c.lruWay[set]))
	default:
		return base + (int(c.lruWay[set])+1)%c.ways
	}
}

// insert installs line with the given flags and word mask, updating in
// place if already present — byte-for-byte the core cache's insert,
// minus the evicted-line report (the analyzer handles write-back
// victims in its refill path, before insert, like System.evictFor).
func (c *filterCache) insert(line uint64, flags uint8, mask uint32) {
	slot := c.find(line)
	if slot < 0 {
		slot = c.victimSlot(line)
	}
	c.tags[slot] = line
	c.flags[slot] = flags
	c.masks[slot] = mask
	c.touch(slot)
}
