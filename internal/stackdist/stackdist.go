// Package stackdist is the one-pass multi-configuration sweep engine:
// a Mattson stack-distance analyzer that replays a multiprogrammed
// trace once and produces miss-ratio curves for an entire
// size × associativity grid of LRU set-associative caches.
//
// The classic observation (Mattson et al., 1970) is that LRU caches of
// one line size form an inclusive hierarchy: a reference that hits in a
// cache hits in every larger cache of the same family. Generalized to
// set-associative caches, a reference's "stack distance" in a cache
// with S sets is its depth in the per-set LRU stack, and the reference
// hits in every cache with S sets and more than that many ways. One
// pass that records a histogram of stack distances per distinct set
// count therefore yields the exact LRU hit count of every (size, ways)
// point of the grid at once — O(configs × trace) sweeps collapse to
// O(trace).
//
// The analyzer implements sched.Target and sched.BatchTarget, so the
// round-robin scheduler multiplexes the packed per-process recordings
// onto it exactly as it does onto the cycle-accurate core.System: same
// PID assignment, same syscall context switches, same MMU page
// coloring, and therefore the same physical reference stream. Its
// clock is nominal (one cycle per instruction plus the trace's own CPU
// stalls), which reproduces the simulator's interleaving exactly when
// context switches are syscall-driven, and approximately under
// time-slice expiry (see EXPERIMENTS.md for the exactness domain).
//
// Reference classes: the L1-I and L1-D streams are analyzed directly;
// a functional (untimed) model of one fixed L1 configuration — the
// "filter" — generates the secondary-cache reference stream, which is
// analyzed three ways (unified, instruction-only, data-only) so both
// unified and split L2 organizations come out of the same pass. Reads
// and writes are binned separately for write-policy screening, and
// every histogram is also recorded per process.
package stackdist

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/trace"
)

// Class identifies one analyzed reference stream.
type Class int

const (
	// ClassL1I is the instruction-fetch stream (every instruction).
	ClassL1I Class = iota
	// ClassL1D is the data stream (every load and store).
	ClassL1D
	// ClassL2U is the secondary-cache stream behind the filter L1,
	// instruction and data sides merged — the unified organization.
	ClassL2U
	// ClassL2I is the instruction side of the L2 stream alone — one
	// bank of a split organization.
	ClassL2I
	// ClassL2D is the data side of the L2 stream alone.
	ClassL2D

	numClasses
)

// String names the class like the paper's figures.
func (c Class) String() string {
	switch c {
	case ClassL1I:
		return "L1-I"
	case ClassL1D:
		return "L1-D"
	case ClassL2U:
		return "L2"
	case ClassL2I:
		return "L2-I"
	case ClassL2D:
		return "L2-D"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// GridSpec describes one class's size × associativity grid. Every
// (size, ways) pair must describe an implementable set-associative
// cache (power-of-two set count), exactly like core.CacheGeom.
type GridSpec struct {
	// LineWords is the line length in words, shared by the whole grid
	// (stack distances are line-granular, so one pass covers one line
	// size).
	LineWords int
	// SizesWords are the swept total capacities in words.
	SizesWords []int
	// Ways are the swept associativities. The per-set stacks are
	// truncated at the largest way count that maps to each set count,
	// so small grids stay cheap: the paper's 1/2-way grid probes at
	// most two stack entries per reference.
	Ways []int
}

// validate reports whether the grid is analyzable.
func (g GridSpec) validate(name string) error {
	if !powerOfTwo(g.LineWords) {
		return fmt.Errorf("stackdist: %s: line %dW not a positive power of two", name, g.LineWords)
	}
	if len(g.SizesWords) == 0 || len(g.Ways) == 0 {
		return fmt.Errorf("stackdist: %s: empty grid (need at least one size and one way count)", name)
	}
	for _, w := range g.Ways {
		if w <= 0 {
			return fmt.Errorf("stackdist: %s: nonpositive associativity %d", name, w)
		}
	}
	for _, size := range g.SizesWords {
		for _, w := range g.Ways {
			if size <= 0 || size%(g.LineWords*w) != 0 {
				return fmt.Errorf("stackdist: %s: size %dW not divisible by line %dW x ways %d", name, size, g.LineWords, w)
			}
			if !powerOfTwo(size / (g.LineWords * w)) {
				return fmt.Errorf("stackdist: %s: set count %d (size %dW, %d-way) not a power of two", name, size/(g.LineWords*w), size, w)
			}
		}
	}
	return nil
}

func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Config parameterizes an Analyzer.
type Config struct {
	// L1I, L1D, and L2 are the three grids the pass evaluates. The L2
	// grid's sizes are bank sizes: a unified organization of total
	// size S is looked up at S in ClassL2U, a symmetric split
	// organization at S/2 in ClassL2I and ClassL2D.
	L1I, L1D, L2 GridSpec

	// FilterL1I and FilterL1D fix the one primary-cache configuration
	// whose misses generate the L2 reference stream (zero value: the
	// paper's base 4 KW direct-mapped split L1 with 4 W lines).
	// FilterPolicy selects the write policy of the filter's data side;
	// the filter is functional only — hits, misses, allocations, and
	// write-back/write-through traffic are modeled, timing is not.
	FilterL1I, FilterL1D core.CacheGeom
	FilterPolicy         core.WritePolicy

	// MMU configures address translation; the zero value is the base
	// architecture's 64-color staggered MMU, matching core.Base().
	MMU mmu.Config
}

// withDefaults fills the zero-value filter geometries from the base
// architecture.
func (cfg Config) withDefaults() Config {
	base := core.Base()
	if cfg.FilterL1I == (core.CacheGeom{}) {
		cfg.FilterL1I = base.L1I
	}
	if cfg.FilterL1D == (core.CacheGeom{}) {
		cfg.FilterL1D = base.L1D
	}
	return cfg
}

// Validate checks the configuration (after applying defaults).
func (cfg Config) Validate() error {
	if err := cfg.L1I.validate("L1-I grid"); err != nil {
		return err
	}
	if err := cfg.L1D.validate("L1-D grid"); err != nil {
		return err
	}
	if err := cfg.L2.validate("L2 grid"); err != nil {
		return err
	}
	if err := validGeom("filter L1-I", cfg.FilterL1I); err != nil {
		return err
	}
	if err := validGeom("filter L1-D", cfg.FilterL1D); err != nil {
		return err
	}
	if cfg.FilterPolicy < core.WriteBack || cfg.FilterPolicy > core.Subblock {
		return fmt.Errorf("stackdist: unknown filter write policy %d", int(cfg.FilterPolicy))
	}
	// A filter refill fetches one L1 line; it must land inside one L2
	// line so each miss is a single L2-line reference.
	if cfg.FilterL1I.LineWords > cfg.L2.LineWords || cfg.FilterL1D.LineWords > cfg.L2.LineWords {
		return fmt.Errorf("stackdist: filter L1 line exceeds the L2 grid line (%dW/%dW > %dW)",
			cfg.FilterL1I.LineWords, cfg.FilterL1D.LineWords, cfg.L2.LineWords)
	}
	if err := cfg.MMU.Validate(); err != nil {
		return fmt.Errorf("stackdist: MMU: %w", err)
	}
	return nil
}

// validGeom mirrors core.CacheGeom's validation for the filter caches.
func validGeom(name string, g core.CacheGeom) error {
	switch {
	case g.SizeWords <= 0 || g.LineWords <= 0 || g.Ways <= 0:
		return fmt.Errorf("stackdist: %s: nonpositive geometry %+v", name, g)
	case g.SizeWords%(g.LineWords*g.Ways) != 0:
		return fmt.Errorf("stackdist: %s: size %dW not divisible by line %dW x ways %d", name, g.SizeWords, g.LineWords, g.Ways)
	case !powerOfTwo(g.LineWords):
		return fmt.Errorf("stackdist: %s: line %dW not a power of two", name, g.LineWords)
	case !powerOfTwo(g.SizeWords / (g.LineWords * g.Ways)):
		return fmt.Errorf("stackdist: %s: set count %d not a power of two", name, g.SizeWords/(g.LineWords*g.Ways))
	}
	return nil
}

// log2 returns floor(log2(v)) for v >= 1 (0 for v == 0).
func log2(v uint64) uint {
	if v == 0 {
		return 0
	}
	return uint(bits.Len64(v)) - 1
}

// noLine marks an empty stack slot (and the "no previous reference"
// state of a class's repeat fast path). Physical line addresses are
// tiny by comparison, so it can never collide with a real line.
const noLine = ^uint64(0)

// maxPIDs bounds the per-process histograms: mmu.PID is 8 bits.
const maxPIDs = 256

// gridStacks holds the truncated per-set LRU stacks and the distance
// histograms for one distinct set count of a class's grid.
//
// The stack for each set keeps the depth most-recently-used lines,
// MRU first. A reference found at depth d hits in every cache with
// this set count and more than d ways; a reference not found within
// depth — whether it was pushed off the truncated stack or never seen
// — misses in all of them, and lands in the overflow bucket (index
// depth of the histograms). depth is the largest way count the grid
// asks about at this set count, so truncation loses nothing.
type gridStacks struct {
	sets    int
	setMask uint64
	depth   int
	stacks  []uint64 // sets × depth, MRU first; noLine when empty
	reads   []uint64 // depth+1 buckets; [depth] = miss at every tracked ways
	writes  []uint64
	perPID  []uint64 // maxPIDs × (depth+1), reads+writes merged
}

func newGridStacks(sets, depth int) *gridStacks {
	g := &gridStacks{
		sets:    sets,
		setMask: uint64(sets) - 1,
		depth:   depth,
		stacks:  make([]uint64, sets*depth),
		reads:   make([]uint64, depth+1),
		writes:  make([]uint64, depth+1),
		perPID:  make([]uint64, maxPIDs*(depth+1)),
	}
	for i := range g.stacks {
		g.stacks[i] = noLine
	}
	return g
}

// access records one reference to line and updates the set's stack.
// This is the analyzer's hottest loop after the repeat fast path; the
// set arithmetic is hoisted and the scan runs over a subslice like
// core's cache.find.
func (g *gridStacks) access(line uint64, write bool, pid int) {
	base := int(line&g.setMask) * g.depth
	st := g.stacks[base : base+g.depth]
	d := 0
	if st[0] != line {
		d = g.depth
		for i := 1; i < len(st); i++ {
			if st[i] == line {
				d = i
				break
			}
		}
		// Move to front: everything above the hit depth shifts down one.
		if d == g.depth {
			copy(st[1:], st[:g.depth-1])
		} else {
			copy(st[1:], st[:d])
		}
		st[0] = line
	}
	if write {
		g.writes[d]++
	} else {
		g.reads[d]++
	}
	g.perPID[pid*(g.depth+1)+d]++
}

// classAnalyzer analyzes one reference class: the same address stream
// against every distinct set count its grid needs.
type classAnalyzer struct {
	class     Class
	lineWords int
	offBits   uint
	grids     []*gridStacks

	// Repeat fast path: a reference to the same line as the previous
	// reference of this class is at distance 0 in every grid (the line
	// is MRU everywhere), so it only bumps counters. Instruction
	// fetches walk lines sequentially, making this the common case.
	lastLine            uint64
	lastPID             int
	repReads, repWrites uint64
}

func newClassAnalyzer(class Class, spec GridSpec) *classAnalyzer {
	c := &classAnalyzer{
		class:     class,
		lineWords: spec.LineWords,
		offBits:   log2(uint64(spec.LineWords * trace.WordBytes)),
		lastLine:  noLine,
	}
	// Collect the distinct set counts of the grid; each tracks stacks
	// deep enough for the largest associativity asked about at that
	// set count.
	type setCount struct{ sets, depth int }
	var scs []setCount
	for _, size := range spec.SizesWords {
		for _, w := range spec.Ways {
			sets := size / (spec.LineWords * w)
			found := false
			for i := range scs {
				if scs[i].sets == sets {
					if w > scs[i].depth {
						scs[i].depth = w
					}
					found = true
					break
				}
			}
			if !found {
				scs = append(scs, setCount{sets, w})
			}
		}
	}
	sort.Slice(scs, func(i, j int) bool { return scs[i].sets < scs[j].sets })
	c.grids = make([]*gridStacks, len(scs))
	for i, sc := range scs {
		c.grids[i] = newGridStacks(sc.sets, sc.depth)
	}
	return c
}

// access records one reference to the line containing addr.
func (c *classAnalyzer) access(addr uint64, write bool, pid int) {
	line := addr >> c.offBits
	if line == c.lastLine && pid == c.lastPID {
		if write {
			c.repWrites++
		} else {
			c.repReads++
		}
		return
	}
	c.flushRepeats()
	c.lastLine, c.lastPID = line, pid
	for _, g := range c.grids {
		g.access(line, write, pid)
	}
}

// flushRepeats folds the accumulated same-line references into every
// grid's distance-0 buckets. Must run before reading histograms.
func (c *classAnalyzer) flushRepeats() {
	if c.repReads == 0 && c.repWrites == 0 {
		return
	}
	r, w, pid := c.repReads, c.repWrites, c.lastPID
	c.repReads, c.repWrites = 0, 0
	for _, g := range c.grids {
		g.reads[0] += r
		g.writes[0] += w
		g.perPID[pid*(g.depth+1)] += r + w
	}
}
