package stackdist_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallConfig is a grid small enough to reason about by hand: 4-word
// lines, L1 sizes spanning 64 to 128 sets at 1 and 2 ways.
func smallConfig() stackdist.Config {
	return stackdist.Config{
		L1I: stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
		L1D: stackdist.GridSpec{LineWords: 4, SizesWords: []int{256, 512}, Ways: []int{1, 2}},
		L2:  stackdist.GridSpec{LineWords: 32, SizesWords: []int{8192}, Ways: []int{1}},
	}
}

// analyze runs one single-process event list through the full
// scheduler+analyzer stack.
func analyze(t *testing.T, cfg stackdist.Config, evs []trace.Event) *stackdist.Result {
	t.Helper()
	procs := []sched.Process{{Name: "unit", Stream: trace.NewMemTrace(evs)}}
	res, _, err := stackdist.Analyze(cfg, procs, sched.Config{Level: 1})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

func load(addr uint32) trace.Event {
	return trace.Event{Kind: trace.Load, Data: addr, Size: 4}
}

func storeEv(addr uint32) trace.Event {
	return trace.Event{Kind: trace.Store, Data: addr, Size: 4}
}

// TestGridCountsAcrossGeometries pins the per-set stack-distance
// bookkeeping: one conflict pattern, four geometries, all from one
// pass. Addresses stay inside one 16 KB page, so translation adds a
// frame base whose low bits are zero and every set index below page
// size is exactly the virtual one.
func TestGridCountsAcrossGeometries(t *testing.T) {
	// A and B are 1024 bytes apart: same set in 64- and 32-set caches
	// (4-word = 16-byte lines), different sets in a 128-set cache.
	const a, b = 0x000, 0x400
	res := analyze(t, smallConfig(), []trace.Event{load(a), load(b), load(a)})

	l1d := res.Class(stackdist.ClassL1D)
	cases := []struct {
		size, ways  int
		misses      uint64
		description string
	}{
		{256, 1, 3, "64 sets, direct-mapped: B evicts A, A misses again"},
		{256, 2, 2, "32 sets, 2-way: A survives B at depth 1"},
		{512, 1, 2, "128 sets: A and B do not conflict"},
		{512, 2, 2, "64 sets, 2-way: A survives at depth 1"},
	}
	for _, c := range cases {
		gc, ok := l1d.Counts(c.size, c.ways)
		if !ok {
			t.Fatalf("no counts for %dW %d-way", c.size, c.ways)
		}
		if gc.Reads != 3 || gc.Writes != 0 {
			t.Errorf("%dW %d-way: accesses = %d reads/%d writes, want 3/0", c.size, c.ways, gc.Reads, gc.Writes)
		}
		if gc.Misses() != c.misses {
			t.Errorf("%dW %d-way: misses = %d, want %d (%s)", c.size, c.ways, gc.Misses(), c.misses, c.description)
		}
	}
	if _, ok := l1d.Counts(1024, 1); ok {
		t.Error("Counts invented a geometry outside the grid")
	}
}

// TestRepeatFastPathFoldsIntoBucketZero drives the same-line repeat
// accumulator (consecutive references to one line) and checks the
// repeats land in distance bucket 0 of the raw histogram.
func TestRepeatFastPathFoldsIntoBucketZero(t *testing.T) {
	const a, b = 0x000, 0x400
	res := analyze(t, smallConfig(), []trace.Event{
		load(a), load(a), load(a), load(b), load(a),
	})
	l1d := res.Class(stackdist.ClassL1D)
	// The 64-set grid carries depth 2 ((512W, 2-way) shares it).
	var hist *stackdist.Histogram
	for i := range l1d.Grids {
		if l1d.Grids[i].Sets == 64 {
			hist = &l1d.Grids[i]
		}
	}
	if hist == nil {
		t.Fatal("no 64-set grid")
	}
	// a cold, a@0, a@0, b cold, a@1.
	want := []uint64{2, 1, 2}
	got := []uint64{hist.Reads[0], hist.Reads[1], hist.Reads[hist.Depth]}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("64-set read histogram [d0 d1 overflow] = %v, want %v", got, want)
	}
}

// TestWriteReadSplit checks stores are binned separately from loads.
func TestWriteReadSplit(t *testing.T) {
	const a = 0x100
	res := analyze(t, smallConfig(), []trace.Event{storeEv(a), storeEv(a), load(a)})
	gc, ok := res.Class(stackdist.ClassL1D).Counts(256, 1)
	if !ok {
		t.Fatal("no counts for 256W direct-mapped")
	}
	if gc.Writes != 2 || gc.Reads != 1 {
		t.Errorf("reads/writes = %d/%d, want 1/2", gc.Reads, gc.Writes)
	}
	if gc.WriteMisses != 1 || gc.ReadMisses != 0 {
		t.Errorf("read/write misses = %d/%d, want 0/1 (only the cold store misses)", gc.ReadMisses, gc.WriteMisses)
	}
}

// TestPerProcessHistograms checks the per-PID split sums to the total.
func TestPerProcessHistograms(t *testing.T) {
	rec := workload.RecordPaperLike(3, 4000)
	res, _, err := stackdist.Analyze(paperConfig(), workload.ReplayProcesses(rec), sched.Config{Level: 3})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	l1i := res.Class(stackdist.ClassL1I)
	for _, h := range l1i.Grids {
		var total, perPID uint64
		for d := 0; d <= h.Depth; d++ {
			total += h.Reads[d] + h.Writes[d]
		}
		for _, row := range h.PerPID {
			for _, v := range row {
				perPID += v
			}
		}
		if total != perPID || total == 0 {
			t.Errorf("%d sets: per-PID sum %d != total %d (or empty)", h.Sets, perPID, total)
		}
	}
}

// paperConfig is the paper-shaped grid used by the integration tests.
func paperConfig() stackdist.Config {
	return stackdist.Config{
		L1I:          stackdist.GridSpec{LineWords: 4, SizesWords: []int{4 * 1024, 16 * 1024}, Ways: []int{1, 2}},
		L1D:          stackdist.GridSpec{LineWords: 4, SizesWords: []int{1 * 1024, 2 * 1024, 4 * 1024, 8 * 1024}, Ways: []int{1, 2}},
		L2:           stackdist.GridSpec{LineWords: 32, SizesWords: []int{64 * 1024, 256 * 1024}, Ways: []int{1, 2}},
		FilterPolicy: core.WriteBack,
	}
}

// serialStream hides a stream's batch interface so the scheduler takes
// the one-instruction Step path.
type serialStream struct{ s trace.Stream }

func (s serialStream) Next(ev *trace.Event) bool { return s.s.Next(ev) }
func (s serialStream) Err() error                { return trace.StreamErr(s.s) }

// TestBatchedMatchesSerial runs the same workload through the batched
// and the serial scheduler paths and demands identical results — the
// StepBatch early-exit contract makes batch boundaries invisible.
func TestBatchedMatchesSerial(t *testing.T) {
	rec := workload.RecordPaperLike(3, 3000)

	batched, _, err := stackdist.Analyze(paperConfig(), workload.ReplayProcesses(rec), sched.Config{Level: 3})
	if err != nil {
		t.Fatalf("batched: %v", err)
	}

	procs := workload.ReplayProcesses(rec)
	for i := range procs {
		procs[i].Stream = serialStream{procs[i].Stream}
	}
	serial, _, err := stackdist.Analyze(paperConfig(), procs, sched.Config{Level: 3})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	if !reflect.DeepEqual(batched, serial) {
		t.Error("batched and serial passes disagree")
	}
}

// TestDeterministicReruns demands the full result — histograms, filter
// counters, per-process rows — be identical across reruns: screening
// results are content-address cached, so a wobble here would poison
// the cache.
func TestDeterministicReruns(t *testing.T) {
	rec := workload.RecordPaperLike(4, 3000)
	run := func() *stackdist.Result {
		res, _, err := stackdist.Analyze(paperConfig(), workload.ReplayProcesses(rec), sched.Config{Level: 4})
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("two passes over the same recording disagree")
	}
}

// TestConfigValidation spot-checks the guard rails.
func TestConfigValidation(t *testing.T) {
	bad := []stackdist.Config{
		{}, // empty grids
		{ // non-power-of-two set count
			L1I: stackdist.GridSpec{LineWords: 4, SizesWords: []int{96}, Ways: []int{1}},
			L1D: stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
			L2:  stackdist.GridSpec{LineWords: 32, SizesWords: []int{8192}, Ways: []int{1}},
		},
		{ // filter line wider than the L2 grid line
			L1I: stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
			L1D: stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
			L2:  stackdist.GridSpec{LineWords: 2, SizesWords: []int{8192}, Ways: []int{1}},
		},
		{ // unknown write policy
			L1I:          stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
			L1D:          stackdist.GridSpec{LineWords: 4, SizesWords: []int{256}, Ways: []int{1}},
			L2:           stackdist.GridSpec{LineWords: 32, SizesWords: []int{8192}, Ways: []int{1}},
			FilterPolicy: core.WritePolicy(99),
		},
	}
	for i, cfg := range bad {
		if _, err := stackdist.New(cfg); err == nil {
			t.Errorf("config %d: want error, got nil", i)
		}
	}
	if _, err := stackdist.New(smallConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
