package stackdist_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stackdist"
	"repro/internal/workload"
)

// The validation runs use a time slice far beyond the workload's total
// cycle count, so every context switch is syscall-driven. Syscalls sit
// at fixed stream positions, which makes the scheduler's interleaving
// identical for the nominal-clock analyzer and the cycle-accurate
// simulator — and on that shared reference stream the analyzer's LRU
// model is exact, so the comparisons below demand integer equality,
// the tightest tolerance a validation can pin.
const syscallOnlySlice = uint64(1) << 62

const (
	valLevel   = 4
	valPerProc = 60_000
)

func valScfg() sched.Config {
	return sched.Config{Level: valLevel, TimeSlice: syscallOnlySlice}
}

// valAnalyze runs one analyzer pass over the validation workload.
func valAnalyze(t *testing.T) *stackdist.Result {
	t.Helper()
	rec := workload.RecordPaperLike(valLevel, valPerProc)
	res, _, err := stackdist.Analyze(paperConfig(), workload.ReplayProcesses(rec), valScfg())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// valExact runs the cycle-accurate simulator on one configuration over
// the same recording.
func valExact(t *testing.T, cfg core.Config) core.Stats {
	t.Helper()
	rec := workload.RecordPaperLike(valLevel, valPerProc)
	res, err := sim.Run(cfg, workload.ReplayProcesses(rec), valScfg())
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res.Stats
}

// TestL1DMatchesExactSimulator validates the L1-D grid against exact
// runs on four paper geometries (Fig. 9's 1K–8K points at 1 and 2
// ways) under the base write-back policy.
func TestL1DMatchesExactSimulator(t *testing.T) {
	res := valAnalyze(t)
	geoms := []struct{ size, ways int }{
		{1 * 1024, 1}, {4 * 1024, 1}, {2 * 1024, 2}, {8 * 1024, 2},
	}
	for _, g := range geoms {
		cfg := core.Base()
		cfg.L1D = core.CacheGeom{SizeWords: g.size, LineWords: 4, Ways: g.ways}
		st := valExact(t, cfg)

		gc, ok := res.Class(stackdist.ClassL1D).Counts(g.size, g.ways)
		if !ok {
			t.Fatalf("L1-D %dW %d-way: not in grid", g.size, g.ways)
		}
		if got, want := gc.Accesses(), st.L1DReads+st.L1DWrites; got != want {
			t.Errorf("L1-D %dW %d-way: accesses %d, exact %d", g.size, g.ways, got, want)
		}
		if got, want := gc.Misses(), st.L1DReadMisses+st.L1DWriteMisses; got != want {
			t.Errorf("L1-D %dW %d-way: misses %d, exact %d", g.size, g.ways, got, want)
		}
	}
}

// TestL1IMatchesExactSimulator validates the L1-I grid on the base and
// a 4×-larger 2-way geometry.
func TestL1IMatchesExactSimulator(t *testing.T) {
	res := valAnalyze(t)
	geoms := []struct{ size, ways int }{
		{4 * 1024, 1}, {16 * 1024, 2},
	}
	for _, g := range geoms {
		cfg := core.Base()
		cfg.L1I = core.CacheGeom{SizeWords: g.size, LineWords: 4, Ways: g.ways}
		st := valExact(t, cfg)

		gc, ok := res.Class(stackdist.ClassL1I).Counts(g.size, g.ways)
		if !ok {
			t.Fatalf("L1-I %dW %d-way: not in grid", g.size, g.ways)
		}
		if got, want := gc.Accesses(), st.L1IAccesses; got != want {
			t.Errorf("L1-I %dW %d-way: accesses %d, exact %d", g.size, g.ways, got, want)
		}
		if got, want := gc.Misses(), st.L1IMisses; got != want {
			t.Errorf("L1-I %dW %d-way: misses %d, exact %d", g.size, g.ways, got, want)
		}
	}
}

// TestL2MatchesExactSimulator validates the unified-L2 grid behind the
// base L1 filter: the filter's miss stream, with write-back victims
// ordered after their refill reads, must reproduce the simulator's
// L2 access and miss counts exactly.
func TestL2MatchesExactSimulator(t *testing.T) {
	res := valAnalyze(t)
	geoms := []struct{ size, ways int }{
		{64 * 1024, 1}, {256 * 1024, 1}, {256 * 1024, 2},
	}
	for _, g := range geoms {
		cfg := core.Base()
		cfg.L2U.Geom = core.CacheGeom{SizeWords: g.size, LineWords: 32, Ways: g.ways}
		st := valExact(t, cfg)

		gc, ok := res.Class(stackdist.ClassL2U).Counts(g.size, g.ways)
		if !ok {
			t.Fatalf("L2 %dW %d-way: not in grid", g.size, g.ways)
		}
		if got, want := gc.Accesses(), st.L2IAccesses+st.L2DAccesses; got != want {
			t.Errorf("L2 %dW %d-way: accesses %d, exact %d", g.size, g.ways, got, want)
		}
		if got, want := gc.Misses(), st.L2IMisses+st.L2DMisses; got != want {
			t.Errorf("L2 %dW %d-way: misses %d, exact %d", g.size, g.ways, got, want)
		}
	}
}

// TestFilterCountsMatchExactSimulator lines the filter L1's own
// counters up against the exact base configuration — the same counts
// the screening CPI estimate is built from.
func TestFilterCountsMatchExactSimulator(t *testing.T) {
	res := valAnalyze(t)
	st := valExact(t, core.Base())
	f := res.Filter
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"L1IAccesses", f.L1IAccesses, st.L1IAccesses},
		{"L1IMisses", f.L1IMisses, st.L1IMisses},
		{"L1DReads", f.L1DReads, st.L1DReads},
		{"L1DReadMisses", f.L1DReadMisses, st.L1DReadMisses},
		{"L1DWrites", f.L1DWrites, st.L1DWrites},
		{"L1DWriteMisses", f.L1DWriteMisses, st.L1DWriteMisses},
		{"L2 reads", f.L2IReads + f.L2DReads, st.L2IAccesses + st.L2DAccesses - f.L2DWrites},
		{"L2 accesses", f.L2IReads + f.L2DReads + f.L2DWrites, st.L2IAccesses + st.L2DAccesses},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: analyzer %d, exact %d", c.name, c.got, c.want)
		}
	}
	if res.Instructions != st.Instructions {
		t.Errorf("instructions: analyzer %d, exact %d", res.Instructions, st.Instructions)
	}
}
