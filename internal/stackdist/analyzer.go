package stackdist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/sched"
	"repro/internal/trace"
)

// FilterStats counts the filter L1's traffic, mirroring the exact
// simulator's corresponding Stats fields so screening CPI estimates
// and validation tests can line the two up.
type FilterStats struct {
	L1IAccesses, L1IMisses        uint64
	L1DReads, L1DReadMisses       uint64
	L1DWrites, L1DWriteMisses     uint64
	WriteOnlyReadMisses           uint64
	SubblockWordMisses            uint64
	L2IReads, L2DReads, L2DWrites uint64
}

// Analyzer is the one-pass engine. It implements sched.Target and
// sched.BatchTarget, so it plugs into the same round-robin
// multiplexing as the cycle-accurate core.System; Step never fails
// (the analyzer has no invariant checker and no fault paths), so a
// pass over a well-formed recording always completes.
type Analyzer struct {
	cfg    Config
	mmu    *mmu.MMU
	policy core.WritePolicy

	classes [numClasses]*classAnalyzer
	fl1i    *filterCache
	fl1d    *filterCache

	// now is the nominal clock: one cycle per instruction plus the
	// trace's recorded CPU stalls. Cache timing never advances it, so
	// the schedule depends only on the instruction streams — which is
	// exactly the cycle-accurate schedule whenever context switches
	// are syscall-driven rather than slice-expiry-driven.
	now          uint64
	instructions uint64
	maxPID       int

	filter FilterStats
}

// New builds an analyzer for the configuration.
func New(cfg Config) (*Analyzer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := mmu.New(cfg.MMU)
	if err != nil {
		return nil, fmt.Errorf("stackdist: MMU: %w", err)
	}
	a := &Analyzer{
		cfg:    cfg,
		mmu:    m,
		policy: cfg.FilterPolicy,
		fl1i:   newFilterCache(cfg.FilterL1I),
		fl1d:   newFilterCache(cfg.FilterL1D),
	}
	a.classes[ClassL1I] = newClassAnalyzer(ClassL1I, cfg.L1I)
	a.classes[ClassL1D] = newClassAnalyzer(ClassL1D, cfg.L1D)
	a.classes[ClassL2U] = newClassAnalyzer(ClassL2U, cfg.L2)
	a.classes[ClassL2I] = newClassAnalyzer(ClassL2I, cfg.L2)
	a.classes[ClassL2D] = newClassAnalyzer(ClassL2D, cfg.L2)
	return a, nil
}

// Now returns the nominal clock (sched.Target).
func (a *Analyzer) Now() uint64 { return a.now }

// Step analyzes one instruction (sched.Target). The error is always
// nil; the signature satisfies the scheduler's contract.
func (a *Analyzer) Step(pid mmu.PID, ev *trace.Event) error {
	a.step(pid, ev)
	return nil
}

// StepBatch analyzes events back to back (sched.BatchTarget), with the
// same deterministic early-exit rule as core.System.StepBatch: return
// after an executed syscall, or once the clock has advanced at least
// len(evs) cycles since entry. Matching the rule exactly means the
// scheduler produces the same interleaving for the analyzer as for the
// simulator.
func (a *Analyzer) StepBatch(pid mmu.PID, evs []trace.Event) (int, error) {
	stop := a.now + uint64(len(evs))
	for i := range evs {
		ev := &evs[i]
		a.step(pid, ev)
		if ev.Syscall || a.now >= stop {
			return i + 1, nil
		}
	}
	return len(evs), nil
}

// step analyzes one instruction: the fetch, then the data reference.
func (a *Analyzer) step(pid mmu.PID, ev *trace.Event) {
	a.instructions++
	a.now += 1 + uint64(ev.Stall)
	if p := int(pid); p > a.maxPID {
		a.maxPID = p
	}
	a.fetchInstruction(pid, ev.PC)
	switch ev.Kind {
	case trace.Load:
		a.load(pid, ev.Data)
	case trace.Store:
		a.store(pid, ev.Data, ev.Size)
	case trace.None:
		// Plain instruction: no data reference.
	}
}

// fetchInstruction mirrors System.fetchInstruction without timing: the
// L1-I stream feeds the ClassL1I stacks, and filter misses feed the
// instruction side of the L2 stream.
func (a *Analyzer) fetchInstruction(pid mmu.PID, vaddr uint32) {
	paddr, _ := a.mmu.TranslateI(pid, vaddr)
	p := int(pid)
	a.classes[ClassL1I].access(paddr, false, p)
	a.filter.L1IAccesses++
	f := a.fl1i
	line := f.lineAddr(paddr)
	if slot := f.find(line); slot >= 0 && f.flags[slot]&fValid != 0 {
		f.touch(slot)
		return
	}
	a.filter.L1IMisses++
	a.l2Access(paddr, false, p, true)
	f.insert(line, fValid, f.fullMask)
}

// l2Access feeds one secondary-cache reference to the unified class
// and to the split class for its side.
func (a *Analyzer) l2Access(addr uint64, write bool, pid int, instrSide bool) {
	a.classes[ClassL2U].access(addr, write, pid)
	if instrSide {
		a.classes[ClassL2I].access(addr, write, pid)
		a.filter.L2IReads++
		return
	}
	a.classes[ClassL2D].access(addr, write, pid)
	if write {
		a.filter.L2DWrites++
	} else {
		a.filter.L2DReads++
	}
}

// refillData mirrors System.refill on the data side for a one-line
// fetch: under write-back, the dirty victim's write lands in the L2
// stream right after the refill read — the order the write buffer
// produces under LPSNone, where every refill drains the buffer before
// reading L2.
func (a *Analyzer) refillData(paddr uint64, pid int) {
	f := a.fl1d
	line := f.lineAddr(paddr)
	var victimAddr uint64
	victimDirty := false
	if a.policy == core.WriteBack {
		slot := f.find(line)
		if slot < 0 {
			slot = f.victimSlot(line)
		}
		if f.tags[slot] != fTagInvalid && f.flags[slot]&fDirty != 0 {
			victimDirty = true
			victimAddr = f.tags[slot] << f.offBits
			f.flags[slot] &^= fDirty
		}
	}
	a.l2Access(paddr, false, pid, false)
	if victimDirty {
		a.l2Access(victimAddr, true, pid, false)
	}
	f.insert(line, fValid, f.fullMask)
}

// load mirrors System.load without timing.
func (a *Analyzer) load(pid mmu.PID, vaddr uint32) {
	paddr, _ := a.mmu.TranslateD(pid, vaddr)
	p := int(pid)
	a.classes[ClassL1D].access(paddr, false, p)
	a.filter.L1DReads++
	f := a.fl1d
	line := f.lineAddr(paddr)
	if slot := f.find(line); slot >= 0 {
		fl := f.flags[slot]
		switch {
		case fl&fWriteOnly != 0:
			a.filter.WriteOnlyReadMisses++
		case a.policy == core.Subblock && f.masks[slot]&(1<<f.wordOf(paddr)) == 0:
			a.filter.SubblockWordMisses++
		case fl&fValid != 0:
			f.touch(slot)
			return
		}
	}
	a.filter.L1DReadMisses++
	a.refillData(paddr, p)
}

// store mirrors System.store without timing. Write-through policies
// place the stored word in the L2 stream at store time — the order the
// write buffer produces under LPSNone — and the per-policy allocation
// behavior matches the simulator's state machine branch for branch.
func (a *Analyzer) store(pid mmu.PID, vaddr uint32, size uint8) {
	paddr, _ := a.mmu.TranslateD(pid, vaddr)
	p := int(pid)
	a.classes[ClassL1D].access(paddr, true, p)
	a.filter.L1DWrites++
	if a.policy != core.WriteBack {
		a.l2Access(paddr&^3, true, p, false)
	}
	f := a.fl1d
	line := f.lineAddr(paddr)
	slot := f.find(line)

	switch a.policy {
	case core.WriteBack:
		if slot >= 0 && f.flags[slot]&fValid != 0 {
			f.flags[slot] |= fDirty
			f.touch(slot)
			return
		}
		a.filter.L1DWriteMisses++
		a.refillData(paddr, p)
		if slot = f.find(line); slot >= 0 {
			f.flags[slot] |= fDirty
		}

	case core.WriteMissInvalidate:
		if slot >= 0 && f.flags[slot]&fValid != 0 {
			f.touch(slot)
			return
		}
		a.filter.L1DWriteMisses++
		victim := f.victimSlot(line)
		if f.tags[victim] != fTagInvalid {
			f.tags[victim] = fTagInvalid
			f.flags[victim] = 0
			f.masks[victim] = 0
		}

	case core.WriteOnly:
		if slot >= 0 && f.flags[slot]&(fValid|fWriteOnly) != 0 {
			f.flags[slot] |= fDirty
			f.touch(slot)
			return
		}
		a.filter.L1DWriteMisses++
		f.insert(line, fWriteOnly|fDirty, 0)

	case core.Subblock:
		fullWord := size >= trace.WordBytes && paddr&3 == 0
		if slot >= 0 && f.flags[slot]&fValid != 0 {
			if fullWord {
				f.masks[slot] |= 1 << f.wordOf(paddr)
			}
			f.flags[slot] |= fDirty
			f.touch(slot)
			return
		}
		a.filter.L1DWriteMisses++
		var mask uint32
		if fullWord {
			mask = 1 << f.wordOf(paddr)
		}
		f.insert(line, fValid|fDirty, mask)
	}
}

// Analyze runs one pass over the processes under the round-robin
// scheduler and returns the grid result. This is the package's main
// entry point: one call, one replay, every configuration.
func Analyze(cfg Config, procs []sched.Process, scfg sched.Config) (*Result, sched.Result, error) {
	a, err := New(cfg)
	if err != nil {
		return nil, sched.Result{}, err
	}
	sres, err := sched.Run(a, procs, scfg)
	if err != nil {
		return nil, sres, fmt.Errorf("stackdist: %w", err)
	}
	return a.Result(), sres, nil
}
