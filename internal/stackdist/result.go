package stackdist

// GridCounts are the reference counts of one (size, ways) grid point:
// how many reads and writes the class saw, and how many of each miss
// in an LRU cache of that geometry. Counts are integers, not ratios,
// so validation against the exact simulator can demand equality.
type GridCounts struct {
	Reads, Writes           uint64
	ReadMisses, WriteMisses uint64
}

// Accesses is the total reference count.
func (g GridCounts) Accesses() uint64 { return g.Reads + g.Writes }

// Misses is the total miss count.
func (g GridCounts) Misses() uint64 { return g.ReadMisses + g.WriteMisses }

// MissRatio is Misses/Accesses (0 for an idle grid point).
func (g GridCounts) MissRatio() float64 {
	if g.Accesses() == 0 {
		return 0
	}
	return float64(g.Misses()) / float64(g.Accesses())
}

// Histogram is the stack-distance histogram for one set count of a
// class's grid: bucket d counts references found at LRU depth d in
// their set; the final bucket (index Depth) counts references beyond
// every tracked depth, including cold misses. A (sets, ways) cache
// misses exactly the references in buckets ways..Depth.
type Histogram struct {
	Sets   int
	Depth  int
	Reads  []uint64
	Writes []uint64
	// PerPID[p][d] is the merged read+write bucket d for process p
	// (indexed by scheduler PID; index 0 is unused under the
	// round-robin scheduler, whose PIDs start at 1).
	PerPID [][]uint64
}

// ClassResult is one reference class's full grid: a histogram per
// distinct set count, sorted by set count.
type ClassResult struct {
	Class     Class
	LineWords int
	Grids     []Histogram
}

// Counts returns the reference counts for an LRU cache of sizeWords
// capacity and the given associativity, or false if that geometry was
// not in the analyzed grid.
func (c *ClassResult) Counts(sizeWords, ways int) (GridCounts, bool) {
	if ways <= 0 || c.LineWords <= 0 || sizeWords <= 0 || sizeWords%(c.LineWords*ways) != 0 {
		return GridCounts{}, false
	}
	sets := sizeWords / (c.LineWords * ways)
	for gi := range c.Grids {
		g := &c.Grids[gi]
		if g.Sets != sets || g.Depth < ways {
			continue
		}
		var gc GridCounts
		for d := 0; d <= g.Depth; d++ {
			r, w := g.Reads[d], g.Writes[d]
			gc.Reads += r
			gc.Writes += w
			if d >= ways {
				gc.ReadMisses += r
				gc.WriteMisses += w
			}
		}
		return gc, true
	}
	return GridCounts{}, false
}

// MissRatio is the miss ratio at (sizeWords, ways), or false if the
// geometry was not analyzed.
func (c *ClassResult) MissRatio(sizeWords, ways int) (float64, bool) {
	gc, ok := c.Counts(sizeWords, ways)
	if !ok {
		return 0, false
	}
	return gc.MissRatio(), true
}

// Result is one pass's complete output: every class's grid, the
// filter L1's traffic counts, and the pass's nominal clock.
type Result struct {
	Instructions  uint64
	NominalCycles uint64
	Classes       [numClasses]ClassResult
	Filter        FilterStats
}

// Class returns the grid for one reference class (nil for a value
// outside the Class enumeration).
func (r *Result) Class(c Class) *ClassResult {
	if c < 0 || c >= numClasses {
		return nil
	}
	return &r.Classes[c]
}

// SplitL2Counts combines the instruction- and data-bank grids into the
// counts of a symmetric split L2 whose banks each hold bankSizeWords.
func (r *Result) SplitL2Counts(bankSizeWords, ways int) (GridCounts, bool) {
	ic, ok := r.Classes[ClassL2I].Counts(bankSizeWords, ways)
	if !ok {
		return GridCounts{}, false
	}
	dc, ok := r.Classes[ClassL2D].Counts(bankSizeWords, ways)
	if !ok {
		return GridCounts{}, false
	}
	return GridCounts{
		Reads:       ic.Reads + dc.Reads,
		Writes:      ic.Writes + dc.Writes,
		ReadMisses:  ic.ReadMisses + dc.ReadMisses,
		WriteMisses: ic.WriteMisses + dc.WriteMisses,
	}, true
}

// Result snapshots the analyzer's histograms. It may be called
// mid-pass (the repeat fast path is flushed first); the returned
// slices are copies and stay stable if the pass continues.
func (a *Analyzer) Result() *Result {
	res := &Result{
		Instructions:  a.instructions,
		NominalCycles: a.now,
		Filter:        a.filter,
	}
	for i, c := range a.classes {
		c.flushRepeats()
		res.Classes[i] = c.snapshot(a.maxPID)
	}
	return res
}

// snapshot copies the class's histograms, trimming per-process rows to
// the highest PID seen.
func (c *classAnalyzer) snapshot(maxPID int) ClassResult {
	cr := ClassResult{
		Class:     c.class,
		LineWords: c.lineWords,
		Grids:     make([]Histogram, len(c.grids)),
	}
	for i, g := range c.grids {
		h := Histogram{
			Sets:   g.sets,
			Depth:  g.depth,
			Reads:  append([]uint64(nil), g.reads...),
			Writes: append([]uint64(nil), g.writes...),
			PerPID: make([][]uint64, maxPID+1),
		}
		stride := g.depth + 1
		for p := 0; p <= maxPID; p++ {
			h.PerPID[p] = append([]uint64(nil), g.perPID[p*stride:(p+1)*stride]...)
		}
		h.PerPID[0] = nil // PID 0 is never scheduled
		cr.Grids[i] = h
	}
	return cr
}
