package report

import (
	"repro/internal/core"
	"repro/internal/sample"
)

// SampledStat is one sampled estimate: the mean across measured
// intervals with its standard error and normal-approximation 95%
// confidence interval. Field names are part of the stable JSON surface.
type SampledStat struct {
	Mean   float64 `json:"mean"`
	Stderr float64 `json:"stderr"`
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// SampledStats is the sampled-fidelity block of a Report: the sampling
// regime that ran, its coverage, and the per-statistic interval
// estimates. It appears only on reports produced by NewSampled.
type SampledStats struct {
	// The sampling regime, defaults applied (instruction counts).
	Interval         uint64 `json:"interval"`
	Period           uint64 `json:"period"`
	Warmup           uint64 `json:"warmup"`
	FunctionalWindow uint64 `json:"functional_window"`
	Seed             uint64 `json:"seed"`
	// Coverage: complete measured intervals and the instructions inside
	// them, against everything the run consumed.
	Intervals            int    `json:"intervals"`
	MeasuredInstructions uint64 `json:"measured_instructions"`
	TotalInstructions    uint64 `json:"total_instructions"`
	// Interval estimates (mean, stderr, 95% CI across intervals).
	CPI          SampledStat `json:"cpi"`
	MemoryCPI    SampledStat `json:"memory_cpi"`
	L1IMissRatio SampledStat `json:"l1i_miss_ratio"`
	L1DMissRatio SampledStat `json:"l1d_miss_ratio"`
	L2MissRatio  SampledStat `json:"l2_miss_ratio"`
}

func sampledStat(s sample.Stat) SampledStat {
	return SampledStat{Mean: s.Mean, Stderr: s.Stderr, CI95Lo: s.CI95Lo, CI95Hi: s.CI95Hi}
}

// NewSampled builds the Report for one sampled run. The top-level
// counters and derived figures describe the measured intervals only
// (ratio-of-sums point estimates over res.Measured); the Sampled block
// carries the regime, the coverage, and the per-statistic confidence
// intervals. Sched describes the whole run, all fast-forward modes
// included, exactly as sample.Run reports it.
func NewSampled(cfg core.Config, res sample.Result) Report {
	st := res.Measured
	stack := make([]CauseCPI, 0, len(core.Causes()))
	for _, c := range core.Causes() {
		stack = append(stack, CauseCPI{Cause: c.String(), CPI: st.CPIOf(c)})
	}
	return Report{
		Config:       cfg.String(),
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		CPI:          st.CPI(),
		MemoryCPI:    st.MemoryCPI(),
		BaseCPI:      st.BaseCPI(),
		CPIStack:     stack,
		MissRatios: MissRatios{
			L1I:      st.L1IMissRatio(),
			L1D:      st.L1DMissRatio(),
			L1DRead:  st.L1DReadMissRatio(),
			L1DWrite: st.L1DWriteMissRatio(),
			L2:       st.L2MissRatio(),
			L2I:      st.L2IMissRatio(),
			L2D:      st.L2DMissRatio(),
		},
		Counters: st,
		Sched: SchedStats{
			Instructions:    res.Sched.Instructions,
			Switches:        res.Sched.Switches,
			SyscallSwitches: res.Sched.SyscallSwitches,
			SliceSwitches:   res.Sched.SliceSwitches,
			CyclesPerSwitch: res.Sched.CyclesPerSwitch,
			Completed:       res.Sched.Completed,
			PerProcess:      res.Sched.PerProcess,
		},
		Sampled: &SampledStats{
			Interval:             res.Config.Interval,
			Period:               res.Config.Period,
			Warmup:               res.Config.Warmup,
			FunctionalWindow:     res.Config.FunctionalWindow,
			Seed:                 res.Config.Seed,
			Intervals:            res.Intervals,
			MeasuredInstructions: res.MeasuredInstructions,
			TotalInstructions:    res.TotalInstructions,
			CPI:                  sampledStat(res.CPI),
			MemoryCPI:            sampledStat(res.MemoryCPI),
			L1IMissRatio:         sampledStat(res.L1IMissRatio),
			L1DMissRatio:         sampledStat(res.L1DMissRatio),
			L2MissRatio:          sampledStat(res.L2MissRatio),
		},
	}
}
