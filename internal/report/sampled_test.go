package report

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/sched"
	"repro/internal/workload"
)

// goldenSampledRun is a small deterministic sampled run whose Report
// the golden file freezes. A short interval and period keep the run
// cheap while still yielding several measured intervals.
func goldenSampledRun(t *testing.T) Report {
	t.Helper()
	cfg := core.Base()
	res, err := sample.Run(cfg,
		workload.ReplayProcesses(workload.RecordPaperLike(2, 150_000)),
		sched.Config{Level: 2},
		sample.Config{Interval: 2_000, Period: 30_000, Warmup: 500, FunctionalWindow: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals < 2 {
		t.Fatalf("golden sampled run measured only %d intervals", res.Intervals)
	}
	return NewSampled(cfg, res)
}

// TestSampledReportJSONGolden freezes the sampled block's JSON surface:
// the field names and layout under "sampled" are stable API the service
// serves and clients parse.
func TestSampledReportJSONGolden(t *testing.T) {
	r := goldenSampledRun(t)
	got, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_sampled_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sampled report JSON drifted from golden file %s\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intended)",
			golden, got, want)
	}
}

// TestSampledReportRoundTrip checks the sampled block survives an
// unmarshal/marshal cycle byte-identically (the cache-tier property),
// and that exact reports keep omitting it.
func TestSampledReportRoundTrip(t *testing.T) {
	r := goldenSampledRun(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sampled == nil {
		t.Fatal("sampled block lost in round trip")
	}
	again, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", data, again)
	}

	exact, err := goldenRun(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(exact, []byte(`"sampled"`)) {
		t.Error("exact report unexpectedly contains a sampled block")
	}
}
