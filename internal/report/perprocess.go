package report

import (
	"fmt"
	"sort"
	"strings"
)

// FormatPerProcess renders a per-process instruction-count map in a
// stable order (sorted by process name), so multiprogramming reports
// are byte-identical across runs regardless of map iteration order —
// the pattern the determinism analyzer requires whenever aggregated
// map data is emitted.
func FormatPerProcess(perProc map[string]uint64) string {
	names := make([]string, 0, len(perProc))
	//lint:allow determinism keys are collected and sorted below
	for name := range perProc {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "  %-12s %d\n", name, perProc[name])
	}
	return b.String()
}
