package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{
		Name:   "demo",
		XLabel: "x",
		Series: []string{"a", "b"},
		Rows:   [][]float64{{1, 2.5, 3}, {2, 4, 0.001}},
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "x,a,b\n1,2.5,3\n2,4,0.001\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestSaveCSV(t *testing.T) {
	dir := t.TempDir()
	tb := &Table{Name: "t", XLabel: "x", Series: []string{"y"}, Rows: [][]float64{{1, 2}}}
	path, err := tb.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "t.csv" {
		t.Fatalf("path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,y\n") {
		t.Fatalf("file contents %q", data)
	}
}

func TestFig2TableShape(t *testing.T) {
	rows := []experiments.Fig2Row{
		{Level: 1, L1IMiss: 0.01, L1DMiss: 0.1, L2Miss: 0.02, CPI: 2},
		{Level: 8, L1IMiss: 0.01, L1DMiss: 0.1, L2Miss: 0.05, CPI: 2.4},
	}
	tb := Fig2Table(rows)
	if len(tb.Rows) != 2 || len(tb.Rows[0]) != 5 {
		t.Fatalf("table shape %dx%d", len(tb.Rows), len(tb.Rows[0]))
	}
	if tb.Rows[1][0] != 8 || tb.Rows[1][4] != 2.4 {
		t.Fatalf("row values wrong: %v", tb.Rows[1])
	}
}

func TestFig5TableAlignsPolicies(t *testing.T) {
	rows := []experiments.Fig5Row{
		{Policy: 0, AccessTime: 2, CPI: 2.2},
		{Policy: 2, AccessTime: 2, CPI: 2.0},
	}
	tb := Fig5Table("fig5", rows)
	if len(tb.Rows) != len(experiments.Fig5AccessTimes) {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	first := tb.Rows[0]
	if first[0] != 2 || first[1] != 2.2 || first[3] != 2.0 {
		t.Fatalf("first row %v", first)
	}
}

func TestStagesTable(t *testing.T) {
	rows := []experiments.StageRow{
		{Label: "a", CPI: 2.0, MemCPI: 0.7},
		{Label: "b", CPI: 1.9, MemCPI: 0.6},
	}
	tb := StagesTable("fig9", rows)
	if tb.Rows[1][1] != 1.9 {
		t.Fatalf("stage table wrong: %v", tb.Rows)
	}
}

func TestExportAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many sweeps")
	}
	dir := t.TempDir()
	files, err := ExportAll(dir, experiments.Options{MaxInstructions: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("wrote %d files, want 10", len(files))
	}
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil || fi.Size() == 0 {
			t.Errorf("bad export %s: %v", f, err)
		}
	}
}
