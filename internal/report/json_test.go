package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRun is a small, fully deterministic run (explicit-seed synthetic
// workload) whose Report the golden file freezes.
func goldenRun(t *testing.T) Report {
	t.Helper()
	cfg := core.Base()
	res, err := sim.Run(cfg, workload.PaperLike(2, 30_000), sched.Config{Level: 2})
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, res)
}

func TestReportJSONGolden(t *testing.T) {
	r := goldenRun(t)
	got, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON drifted from golden file %s\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intended)",
			golden, got, want)
	}
}

// TestReportJSONRoundTrip checks the encoding is lossless and stable:
// unmarshal then re-marshal reproduces the exact bytes, the property the
// service's result cache depends on.
func TestReportJSONRoundTrip(t *testing.T) {
	r := goldenRun(t)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	again, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", data, again)
	}
}

// TestReportJSONRepeatable checks two independent runs of the same
// configuration marshal to byte-identical JSON.
func TestReportJSONRepeatable(t *testing.T) {
	a, err := goldenRun(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenRun(t).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two identical runs produced different JSON")
	}
}
