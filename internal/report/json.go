package report

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Report is the stable JSON form of one simulation run: the
// configuration that ran, the raw counters, and the derived figures the
// paper's tables quote. It is the payload cmd/cachesimd's /v1/sim
// endpoint serves, so its encoding must be deterministic — a repeat of
// the same run marshals to byte-identical JSON (struct fields encode in
// declaration order, encoding/json sorts map keys, and the counters
// themselves are bit-identical run to run).
type Report struct {
	Config       string     `json:"config"` // one-line architecture description
	Instructions uint64     `json:"instructions"`
	Cycles       uint64     `json:"cycles"`
	CPI          float64    `json:"cpi"`
	MemoryCPI    float64    `json:"memory_cpi"`
	BaseCPI      float64    `json:"base_cpi"`
	CPIStack     []CauseCPI `json:"cpi_stack"` // in core.Causes display order
	MissRatios   MissRatios `json:"miss_ratios"`
	Counters     core.Stats `json:"counters"`
	Sched        SchedStats `json:"sched"`
	// Sampled is present only on sampled-fidelity runs (NewSampled): the
	// sampling regime and per-statistic confidence intervals. Exact runs
	// omit it, keeping their JSON byte-identical to prior releases.
	Sampled *SampledStats `json:"sampled,omitempty"`
}

// CauseCPI is one bar segment of the Fig. 4 CPI stack.
type CauseCPI struct {
	Cause string  `json:"cause"`
	CPI   float64 `json:"cpi"`
}

// MissRatios collects the derived ratios the paper's figures plot.
type MissRatios struct {
	L1I      float64 `json:"l1i"`
	L1D      float64 `json:"l1d"`
	L1DRead  float64 `json:"l1d_read"`
	L1DWrite float64 `json:"l1d_write"`
	L2       float64 `json:"l2"`
	L2I      float64 `json:"l2i"`
	L2D      float64 `json:"l2d"`
}

// SchedStats is the JSON form of the scheduler's result. PerProcess
// marshals deterministically: encoding/json emits map keys sorted.
type SchedStats struct {
	Instructions    uint64            `json:"instructions"`
	Switches        uint64            `json:"switches"`
	SyscallSwitches uint64            `json:"syscall_switches"`
	SliceSwitches   uint64            `json:"slice_switches"`
	CyclesPerSwitch float64           `json:"cycles_per_switch"`
	Completed       []string          `json:"completed,omitempty"`
	PerProcess      map[string]uint64 `json:"per_process,omitempty"`
}

// New builds the Report for one finished run.
func New(cfg core.Config, res sim.Result) Report {
	st := res.Stats
	stack := make([]CauseCPI, 0, len(core.Causes()))
	for _, c := range core.Causes() {
		stack = append(stack, CauseCPI{Cause: c.String(), CPI: st.CPIOf(c)})
	}
	return Report{
		Config:       cfg.String(),
		Instructions: st.Instructions,
		Cycles:       st.Cycles,
		CPI:          st.CPI(),
		MemoryCPI:    st.MemoryCPI(),
		BaseCPI:      st.BaseCPI(),
		CPIStack:     stack,
		MissRatios: MissRatios{
			L1I:      st.L1IMissRatio(),
			L1D:      st.L1DMissRatio(),
			L1DRead:  st.L1DReadMissRatio(),
			L1DWrite: st.L1DWriteMissRatio(),
			L2:       st.L2MissRatio(),
			L2I:      st.L2IMissRatio(),
			L2D:      st.L2DMissRatio(),
		},
		Counters: st,
		Sched: SchedStats{
			Instructions:    res.Sched.Instructions,
			Switches:        res.Sched.Switches,
			SyscallSwitches: res.Sched.SyscallSwitches,
			SliceSwitches:   res.Sched.SliceSwitches,
			CyclesPerSwitch: res.Sched.CyclesPerSwitch,
			Completed:       res.Sched.Completed,
			PerProcess:      res.Sched.PerProcess,
		},
	}
}

// JSON marshals the report in its canonical indented form, the exact
// bytes the service caches and serves.
func (r Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("report: marshal: %w", err)
	}
	return append(data, '\n'), nil
}
