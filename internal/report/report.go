// Package report exports experiment results as CSV series, so the
// paper's figures can be re-plotted from this reproduction's data with
// any plotting tool. Each experiment maps to one file of (x, series...)
// rows; cmd/sweep drives the export with -csv.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/experiments"
)

// Table is a generic labeled grid: one X column and one column per
// series.
type Table struct {
	Name   string
	XLabel string
	Series []string
	Rows   [][]float64 // each row: x followed by len(Series) values
}

// WriteCSV writes the table in RFC 4180 form.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{t.XLabel}, t.Series...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<name>.csv.
func (t *Table) SaveCSV(dir string) (string, error) {
	path := filepath.Join(dir, t.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Fig2Table converts the multiprogramming-level sweep.
func Fig2Table(rows []experiments.Fig2Row) *Table {
	t := &Table{Name: "fig2", XLabel: "level",
		Series: []string{"l1i_miss", "l1d_miss", "l2_miss", "cpi"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []float64{float64(r.Level), r.L1IMiss, r.L1DMiss, r.L2Miss, r.CPI})
	}
	return t
}

// Fig3Table converts the time-slice sweep.
func Fig3Table(rows []experiments.Fig3Row) *Table {
	t := &Table{Name: "fig3", XLabel: "slice_cycles",
		Series: []string{"l1i_miss", "l1d_miss", "l2_miss", "cpi"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []float64{float64(r.TimeSlice), r.L1IMiss, r.L1DMiss, r.L2Miss, r.CPI})
	}
	return t
}

// Fig5Table converts a write-policy sweep: one series per policy.
func Fig5Table(name string, rows []experiments.Fig5Row) *Table {
	t := &Table{Name: name, XLabel: "l2_access_cycles",
		Series: []string{"write_back", "write_miss_invalidate", "write_only", "subblock"}}
	for _, at := range experiments.Fig5AccessTimes {
		row := []float64{float64(at), 0, 0, 0, 0}
		for _, r := range rows {
			if r.AccessTime == at {
				row[1+int(r.Policy)] = r.CPI
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig6Table converts an organization sweep; metric selects CPI (false)
// or miss ratio (true, Table 2).
func Fig6Table(name string, rows []experiments.Fig6Row, missRatio bool) *Table {
	t := &Table{Name: name, XLabel: "size_words",
		Series: []string{"unified_1way", "unified_2way", "split_1way", "split_2way"}}
	for _, size := range experiments.Fig6Sizes {
		row := []float64{float64(size), 0, 0, 0, 0}
		for i, org := range experiments.Fig6Orgs {
			if r, ok := experiments.Fig6At(rows, size, org); ok {
				if missRatio {
					row[1+i] = r.MissRatio
				} else {
					row[1+i] = r.CPI
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SpeedSizeTable converts a Fig. 7/8 sweep: one series per access time.
func SpeedSizeTable(name string, rows []experiments.SpeedSizeRow) *Table {
	t := &Table{Name: name, XLabel: "size_words"}
	for _, at := range experiments.SpeedSizeTimes {
		t.Series = append(t.Series, fmt.Sprintf("access_%d", at))
	}
	for _, size := range experiments.SpeedSizeSizes {
		row := []float64{float64(size)}
		for _, at := range experiments.SpeedSizeTimes {
			r, _ := experiments.SpeedSizeAt(rows, size, at)
			row = append(row, r.CPI)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// StagesTable converts a staged-optimization run (Figs. 9/10): the X
// column is the stage index; labels go in a companion comment column.
func StagesTable(name string, rows []experiments.StageRow) *Table {
	t := &Table{Name: name, XLabel: "stage", Series: []string{"cpi", "memory_cpi"}}
	for i, r := range rows {
		t.Rows = append(t.Rows, []float64{float64(i), r.CPI, r.MemCPI})
	}
	return t
}

// ExportAll runs every figure's sweep at the given options and writes
// CSVs into dir, returning the files written.
func ExportAll(dir string, o experiments.Options) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	tables := []*Table{
		Fig2Table(experiments.Fig2(o)),
		Fig3Table(experiments.Fig3(o)),
		Fig5Table("fig5_suite", experiments.Fig5(o)),
		Fig5Table("fig5_calibrated", experiments.Fig5Calibrated(o)),
		Fig6Table("fig6_cpi", experiments.Fig6Calibrated(o), false),
		Fig6Table("table2_missratio", experiments.Fig6Calibrated(o), true),
		SpeedSizeTable("fig7_l2i", experiments.Fig7(o)),
		SpeedSizeTable("fig8_l2d", experiments.Fig8(o)),
		StagesTable("fig9_stages", experiments.Fig9(o)),
		StagesTable("fig10_stages", experiments.Fig10Calibrated(o)),
	}
	var written []string
	for _, t := range tables {
		path, err := t.SaveCSV(dir)
		if err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}
