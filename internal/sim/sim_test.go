package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/workload"
)

func synthProcs(n int, instrs uint64) []sched.Process {
	procs := make([]sched.Process, n)
	for i := range procs {
		procs[i] = sched.Process{
			Name: "synth",
			Stream: synth.New(synth.Config{
				Instructions: instrs,
				Seed:         uint64(i + 1),
				StallProb:    0.2,
				SyscallEvery: 50_000,
			}),
		}
	}
	return procs
}

func TestRunBaseConfig(t *testing.T) {
	res, err := Run(core.Base(), synthProcs(4, 100_000), sched.Config{Level: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions != 400_000 {
		t.Fatalf("instructions = %d, want 400000", res.Stats.Instructions)
	}
	// The synthetic workload's random component misses hard in a 16 KB
	// L1, so the CPI is high; it just has to be finite and above 1.
	if cpi := res.CPI(); cpi <= 1 || cpi > 50 {
		t.Fatalf("CPI = %g, implausible", cpi)
	}
	if res.Sched.Instructions != res.Stats.Instructions {
		t.Fatal("scheduler and system disagree on instruction count")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bad := core.Base()
	bad.L1D.SizeWords = 3
	if _, err := Run(bad, synthProcs(1, 10), sched.Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

// mustRun is Run for known-good configurations under test.
func mustRun(t *testing.T, cfg core.Config, procs []sched.Process, scfg sched.Config) Result {
	t.Helper()
	res, err := Run(cfg, procs, scfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Result {
		return mustRun(t, core.Base(), synthProcs(2, 50_000), sched.Config{Level: 2})
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestFullPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload in -short mode")
	}
	rec := workload.Record(1)
	cfg := core.Base()
	cfg.SelfCheck = 100_000 // exercise the runtime self-checks on the real workload
	res := mustRun(t, cfg, workload.ReplayProcesses(rec),
		sched.Config{MaxInstructions: 2_000_000})
	if res.Stats.Instructions != 2_000_000 {
		t.Fatalf("instructions = %d", res.Stats.Instructions)
	}
	st := res.Stats
	if st.L1IMissRatio() <= 0 || st.L1DMissRatio() <= 0 || st.L2MissRatio() <= 0 {
		t.Fatalf("degenerate miss ratios: %+v", st)
	}
	if st.CPI() < 1.2 || st.CPI() > 6 {
		t.Fatalf("base-config CPI = %.3f, implausible", st.CPI())
	}
	t.Logf("base config on 2M instructions: CPI %.3f\n%s", st.CPI(), st.Breakdown())
}
