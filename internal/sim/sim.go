// Package sim ties the pieces together: it runs a multiprogrammed
// workload (scheduler + trace streams) against one configured memory
// system (core.System) and returns both the cache statistics and the
// scheduling statistics.
package sim

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// Result bundles the outcome of one simulation run.
type Result struct {
	Stats core.Stats
	Sched sched.Result
}

// CPI returns the run's cycles per instruction.
func (r Result) CPI() float64 { return r.Stats.CPI() }

// Run simulates procs on a fresh system built from cfg.
func Run(cfg core.Config, procs []sched.Process, scfg sched.Config) (Result, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	res := sched.Run(sys, procs, scfg)
	sys.DrainWriteBuffer()
	return Result{Stats: sys.Stats(), Sched: res}, nil
}

// MustRun is Run for known-good configurations.
func MustRun(cfg core.Config, procs []sched.Process, scfg sched.Config) Result {
	r, err := Run(cfg, procs, scfg)
	if err != nil {
		panic(err)
	}
	return r
}
