// Package sim ties the pieces together: it runs a multiprogrammed
// workload (scheduler + trace streams) against one configured memory
// system (core.System) and returns both the cache statistics and the
// scheduling statistics.
package sim

import (
	"repro/internal/core"
	"repro/internal/sched"
)

// Result bundles the outcome of one simulation run.
type Result struct {
	Stats core.Stats
	Sched sched.Result
}

// CPI returns the run's cycles per instruction.
func (r Result) CPI() float64 { return r.Stats.CPI() }

// Run simulates procs on a fresh system built from cfg.
//
// Errors come from three places: an unimplementable configuration
// (before any simulation), a scheduler-surfaced fault mid-run (a target
// fault or a failing trace stream), or — when cfg.SelfCheck is enabled
// — a failed invariant check after the final write-buffer drain. In the
// latter two cases the Result still carries the statistics of the
// instructions that ran.
func Run(cfg core.Config, procs []sched.Process, scfg sched.Config) (Result, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	sres, err := sched.Run(sys, procs, scfg)
	if err != nil {
		return Result{Stats: sys.Stats(), Sched: sres}, err
	}
	sys.DrainWriteBuffer()
	if cfg.SelfCheck > 0 {
		if err := sys.CheckInvariants(); err != nil {
			return Result{Stats: sys.Stats(), Sched: sres}, err
		}
	}
	return Result{Stats: sys.Stats(), Sched: sres}, nil
}
