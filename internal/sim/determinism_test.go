package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// snapshot renders everything a run emits — the full Stats struct, the
// formatted breakdown, and the per-process report — as one byte string.
func snapshot(res sim.Result) string {
	return fmt.Sprintf("%+v\n%s%s",
		res.Stats,
		res.Stats.Breakdown(),
		report.FormatPerProcess(res.Sched.PerProcess))
}

// run executes a small multiprogramming simulation on the paper-like
// synthetic workload with runtime self-checks enabled.
func run(t *testing.T, cfg core.Config) sim.Result {
	t.Helper()
	cfg.SelfCheck = 10_000
	res, err := sim.Run(cfg, workload.PaperLike(4, 60_000), sched.Config{
		Level:     4,
		TimeSlice: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunsAreByteIdentical is the determinism regression gate backing
// the cachelint determinism analyzer: two runs of the same
// configuration must produce bit-for-bit identical statistics and
// report output. A diff here means a nondeterminism source (wall
// clock, process-seeded rand, map iteration) crept into the simulator
// or its reporting.
func TestRunsAreByteIdentical(t *testing.T) {
	for _, cfg := range []core.Config{core.Base(), core.Optimized()} {
		first := snapshot(run(t, cfg))
		second := snapshot(run(t, cfg))
		if first != second {
			t.Errorf("two runs of %v diverged:\n--- first\n%s\n--- second\n%s",
				cfg.WritePolicy, first, second)
		}
	}
}

// TestFreshSystemsDoNotShareState re-runs through a fresh Record cache
// path (the recorded kernel suite) and checks the replayed workload is
// reproducible too, covering the trace memoization and Clone path.
func TestFreshSystemsDoNotShareState(t *testing.T) {
	cfg := core.Base()
	cfg.SelfCheck = 10_000
	scfg := sched.Config{Level: 4, TimeSlice: 20_000, MaxInstructions: 150_000}
	var snaps [2]string
	for i := range snaps {
		res, err := sim.Run(cfg, workload.ReplayProcesses(workload.Record(1)), scfg)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = snapshot(res)
	}
	if snaps[0] != snaps[1] {
		t.Errorf("replayed runs diverged:\n--- first\n%s\n--- second\n%s", snaps[0], snaps[1])
	}
}
