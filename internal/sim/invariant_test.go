package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/synth"
)

// runPolicy simulates one synthetic trace under a write policy and
// returns total cycles.
func runPolicy(t *testing.T, p core.WritePolicy, seed uint64) uint64 {
	t.Helper()
	cfg := core.Base()
	cfg.WritePolicy = p
	if p != core.WriteBack {
		cfg.WBEntries, cfg.WBEntryWords = 8, 1
	}
	procs := []sched.Process{{
		Name: "synth",
		Stream: synth.New(synth.Config{
			Instructions: 150_000,
			Seed:         seed,
			LoadFrac:     0.2,
			StoreFrac:    0.1,
			SeqFrac:      0.3,
			HotFrac:      0.4,
			StoreBurst:   3,
		}),
	}}
	res := mustRun(t, cfg, procs, sched.Config{Level: 1})
	return res.Stats.Cycles
}

// TestWriteOnlyDominatesWMI checks the structural invariant behind the
// paper's Section 6 recommendation: the write-only policy can only turn
// write-miss-invalidate's misses into hits (writes to a write-only line
// hit; reads behave identically), so on any trace it must not be slower.
func TestWriteOnlyDominatesWMI(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		wo := runPolicy(t, core.WriteOnly, seed)
		wmi := runPolicy(t, core.WriteMissInvalidate, seed)
		if wo > wmi {
			t.Errorf("seed %d: write-only (%d cycles) slower than WMI (%d)", seed, wo, wmi)
		}
	}
}

// TestSubblockDominatesWMI: subblock placement strictly refines WMI the
// same way (word writes validate their word; reads of validated words
// hit), so it must not be slower either.
func TestSubblockDominatesWMI(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sb := runPolicy(t, core.Subblock, seed)
		wmi := runPolicy(t, core.WriteMissInvalidate, seed)
		if sb > wmi {
			t.Errorf("seed %d: subblock (%d cycles) slower than WMI (%d)", seed, sb, wmi)
		}
	}
}

// TestSlowerL2NeverHelps: raising the L2 access time can only add
// cycles, whatever the policy.
func TestSlowerL2NeverHelps(t *testing.T) {
	for _, p := range []core.WritePolicy{core.WriteBack, core.WriteOnly} {
		var prev uint64
		for _, access := range []int{2, 6, 10} {
			cfg := core.Base()
			cfg.WritePolicy = p
			if p != core.WriteBack {
				cfg.WBEntries, cfg.WBEntryWords = 8, 1
			}
			cfg.L2U.Timing = core.TimingForAccess(access)
			procs := []sched.Process{{
				Name:   "synth",
				Stream: synth.New(synth.Config{Instructions: 100_000, Seed: 42}),
			}}
			cycles := mustRun(t, cfg, procs, sched.Config{Level: 1}).Stats.Cycles
			if cycles < prev {
				t.Errorf("%v: access %d took %d cycles, less than a faster L2 (%d)",
					p, access, cycles, prev)
			}
			prev = cycles
		}
	}
}

// TestLargerL2NeverHurtsFullyWarm: with a fully associative view this
// would be a theorem; for direct-mapped caches Belady anomalies are
// possible in principle, but a doubling of a direct-mapped L2 preserves
// index bits (the smaller index is a suffix of the larger), so every
// hit in the small cache remains a hit in the big one. Check it.
func TestLargerL2NeverHurts(t *testing.T) {
	var prev uint64
	for i, sizeKW := range []int{64, 128, 256} {
		cfg := core.Base()
		cfg.L2U.Geom.SizeWords = sizeKW * 1024
		procs := []sched.Process{{
			Name:   "synth",
			Stream: synth.New(synth.Config{Instructions: 120_000, Seed: 77, DataBytes: 1 << 20}),
		}}
		cycles := mustRun(t, cfg, procs, sched.Config{Level: 1}).Stats.Cycles
		if i > 0 && cycles > prev {
			t.Errorf("L2 %dKW took %d cycles, more than the half-size cache (%d)", sizeKW, cycles, prev)
		}
		prev = cycles
	}
}
