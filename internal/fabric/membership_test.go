package fabric

import (
	"reflect"
	"testing"
	"time"
)

// newTestMembership pins the clock so TTL expiry is driven by the test,
// not the scheduler.
func newTestMembership(ttl time.Duration) (*Membership, *time.Time) {
	m := NewMembership(ttl, 16)
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	m.now = func() time.Time { return clock }
	return m, &clock
}

func TestMembershipJoinAndDrain(t *testing.T) {
	m, clock := newTestMembership(5 * time.Second)

	if !m.Heartbeat("w0", "http://h:1", WorkerStats{}) {
		t.Fatal("first heartbeat must report a join")
	}
	if m.Heartbeat("w0", "http://h:1", WorkerStats{CacheHits: 3}) {
		t.Fatal("repeat heartbeat must not report a join")
	}
	m.Heartbeat("w1", "http://h:2", WorkerStats{})
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"w0", "w1"}) {
		t.Fatalf("ring members %v", got)
	}

	// w1 keeps heartbeating; w0 goes silent past the TTL.
	*clock = clock.Add(3 * time.Second)
	m.Heartbeat("w1", "http://h:2", WorkerStats{})
	*clock = clock.Add(3 * time.Second)
	removed := m.Expire()
	if !reflect.DeepEqual(removed, []string{"w0"}) {
		t.Fatalf("expired %v, want [w0]", removed)
	}
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("ring after drain %v", got)
	}
	if m.Expire() != nil {
		t.Fatal("second expire must be a no-op")
	}

	// Rejoin: same ID returns, ring recovers the same member set and —
	// by ring determinism — identical routing.
	m.Heartbeat("w0", "http://h:1", WorkerStats{})
	if got := m.Ring().Members(); !reflect.DeepEqual(got, []string{"w0", "w1"}) {
		t.Fatalf("ring after rejoin %v", got)
	}
}

func TestMembershipAddrMoveRebuildsRouting(t *testing.T) {
	m, _ := newTestMembership(5 * time.Second)
	m.Heartbeat("w0", "http://h:1", WorkerStats{})
	v := m.Version()
	if m.Heartbeat("w0", "http://h:9", WorkerStats{}) != true {
		t.Fatal("address change must report a membership change")
	}
	if m.Version() == v {
		t.Fatal("address change must bump the version")
	}
	if addr, ok := m.Addr("w0"); !ok || addr != "http://h:9" {
		t.Fatalf("Addr = %q, %v", addr, ok)
	}
}

func TestMembershipSnapshotAndStats(t *testing.T) {
	m, clock := newTestMembership(10 * time.Second)
	m.Heartbeat("b", "http://h:2", WorkerStats{CacheHits: 7, CacheMisses: 2, InFlight: 1})
	m.Heartbeat("a", "http://h:1", WorkerStats{})
	*clock = clock.Add(2 * time.Second)

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot %v", snap)
	}
	if snap[1].Stats.CacheHits != 7 || snap[1].Stats.InFlight != 1 {
		t.Fatalf("stats not carried: %+v", snap[1].Stats)
	}
	if snap[0].SinceHeartbeatSeconds != 2 {
		t.Fatalf("since-heartbeat %v, want 2s", snap[0].SinceHeartbeatSeconds)
	}
	if _, ok := m.Addr("missing"); ok {
		t.Fatal("unknown member resolved")
	}
}

func TestMembershipRemove(t *testing.T) {
	m, _ := newTestMembership(time.Second)
	m.Heartbeat("w0", "http://h:1", WorkerStats{})
	if !m.Remove("w0") {
		t.Fatal("remove of a present member must report true")
	}
	if m.Remove("w0") {
		t.Fatal("double remove must report false")
	}
	if m.Ring().Size() != 0 {
		t.Fatal("ring not emptied")
	}
}
