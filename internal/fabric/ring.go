// Package fabric is the distributed sweep fabric: the pieces that turn
// N independent cachesimd daemons into one cluster-wide
// content-addressed result cache.
//
// The load-bearing idea is the same one that makes the single-node
// cache sound, applied across processes: a result is a pure function of
// its content address (service.SweepKey / service.SimKey), so *where* a
// request runs never changes *what* it answers. Routing every request
// to the worker that owns its key on a consistent-hash ring (ring.go)
// therefore costs nothing in correctness and buys two things:
//
//   - each worker's in-memory LRU and disk store stay hot for the key
//     range it owns — the cluster-wide hit ratio approaches a single
//     node's with N times the capacity;
//   - no result is computed twice cluster-wide: identical requests from
//     any client land on the same worker and coalesce or hit there.
//
// Membership is heartbeat-driven (membership.go): workers register and
// re-register with the coordinator (coordinator.go); missing enough
// heartbeats drains a worker from the ring, and consistent hashing
// bounds the fallout — only ~K/N of K keys move when one of N workers
// joins or leaves, which ring_test.go pins as an invariant.
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the default number of virtual points each member
// projects onto the ring. More vnodes smooth the key distribution
// (stddev of shard sizes shrinks like 1/sqrt(vnodes)) at a small cost
// in ring build time and memory.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a member set. Build
// one with NewRing; rebuild (cheap, deterministic) when membership
// changes. Lookups walk clockwise from the key's point, so removing a
// member only reassigns the keys that member owned, and adding one only
// claims the key ranges its vnodes land on.
type Ring struct {
	vnodes  int
	members []string // sorted, distinct
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member string
}

// NewRing builds the ring for the given member set. The input order is
// irrelevant (members are deduplicated and sorted first): the same set
// always yields an identical ring, which is what lets every coordinator
// replica — and a coordinator across a worker's leave/rejoin — agree on
// routing without coordination.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	distinct := make([]string, 0, len(set))
	//lint:allow determinism keys are collected and sorted below
	for m := range set {
		distinct = append(distinct, m)
	}
	sort.Strings(distinct)

	r := &Ring{
		vnodes:  vnodes,
		members: distinct,
		points:  make([]point, 0, len(distinct)*vnodes),
	}
	for _, m := range distinct {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hashPoint(m + "#" + strconv.Itoa(v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit hash collision between vnodes is vanishingly rare but
		// must still order deterministically.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// hashPoint positions a label (vnode name or request key) on the ring:
// the first 8 bytes of its SHA-256, big endian. SHA-256 rather than a
// cheaper hash because request keys are themselves SHA-256 hex strings
// and vnode labels are short — uniformity matters more than speed at
// ring-build frequency.
func hashPoint(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the sorted member set the ring was built from.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size reports the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Lookup returns up to n distinct members ordered by the clockwise ring
// walk from key's position: the owner first, then the replicas a
// hedged or failed-over request should try next. n <= 0 or n > members
// returns every member in walk order.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := hashPoint(key)
	// First point at or after h, wrapping at the top of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.points) && len(out) < n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Owner returns the member that owns key (the first hop of Lookup), or
// an error on an empty ring.
func (r *Ring) Owner(key string) (string, error) {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return "", fmt.Errorf("fabric: ring has no members")
	}
	return owners[0], nil
}
