package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RegistrarOptions configures a worker's heartbeat loop.
type RegistrarOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID is this worker's stable fabric identity. It names the worker in
	// the ring, so restarting under the same ID reclaims the same key
	// ranges (and the warm disk store behind them).
	ID string
	// Addr is this worker's base URL as the coordinator should dial it.
	Addr string
	// Interval between heartbeats (default DefaultHeartbeatTTL/3, so a
	// worker survives two dropped beats before the TTL drains it).
	Interval time.Duration
	// Stats, when set, is sampled at each beat and piggybacked for
	// /v1/cluster reporting.
	Stats func() WorkerStats
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Logf, when set, receives heartbeat failures (rate-limited to state
	// changes: first failure and recovery, not every miss).
	Logf func(format string, args ...any)
}

func (o RegistrarOptions) withDefaults() RegistrarOptions {
	if o.Interval <= 0 {
		o.Interval = DefaultHeartbeatTTL / 3
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Registrar keeps one worker registered with the coordinator: an
// immediate join beat, then a steady heartbeat until its context is
// cancelled. Heartbeat failures are counted, not fatal — the worker
// keeps serving direct traffic, and the next successful beat rejoins
// the ring without a full reshuffle (survivors keep their vnode
// positions).
type Registrar struct {
	opts RegistrarOptions
	wg   sync.WaitGroup

	beats    atomic.Uint64 // successful heartbeats
	failures atomic.Uint64 // failed heartbeats
	down     atomic.Bool   // last beat failed (for state-change logging)
}

// StartRegistrar validates the options and starts the heartbeat loop.
// Cancel ctx to stop it; Wait blocks until the loop exits.
func StartRegistrar(ctx context.Context, o RegistrarOptions) (*Registrar, error) {
	if o.Coordinator == "" || o.ID == "" || o.Addr == "" {
		return nil, fmt.Errorf("fabric: registrar needs coordinator, id, and addr (got %q, %q, %q)",
			o.Coordinator, o.ID, o.Addr)
	}
	r := &Registrar{opts: o.withDefaults()}
	r.wg.Add(1)
	go r.loop(ctx)
	return r, nil
}

// Wait blocks until the heartbeat loop has exited (after ctx cancel).
func (r *Registrar) Wait() { r.wg.Wait() }

// Beats reports successful heartbeats; Failures reports failed ones.
func (r *Registrar) Beats() uint64    { return r.beats.Load() }
func (r *Registrar) Failures() uint64 { return r.failures.Load() }

func (r *Registrar) loop(ctx context.Context) {
	defer r.wg.Done()
	r.beat(ctx)
	t := time.NewTicker(r.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.beat(ctx)
		}
	}
}

// beat sends one registration heartbeat. A single beat gets one
// attempt under a deadline shorter than the interval: the loop itself
// is the retry policy, and overlapping beats would reorder stats.
func (r *Registrar) beat(ctx context.Context) {
	var stats WorkerStats
	if r.opts.Stats != nil {
		stats = r.opts.Stats()
	}
	err := r.post(ctx, stats)
	if err != nil {
		r.failures.Add(1)
		if !r.down.Swap(true) && r.opts.Logf != nil {
			r.opts.Logf("fabric: heartbeat to %s failing: %v", r.opts.Coordinator, err)
		}
		return
	}
	r.beats.Add(1)
	if r.down.Swap(false) && r.opts.Logf != nil {
		r.opts.Logf("fabric: heartbeat to %s recovered", r.opts.Coordinator)
	}
}

func (r *Registrar) post(ctx context.Context, stats WorkerStats) error {
	body, err := json.Marshal(RegisterRequest{ID: r.opts.ID, Addr: r.opts.Addr, Stats: stats})
	if err != nil {
		return fmt.Errorf("fabric: marshal heartbeat: %w", err)
	}
	bctx, cancel := context.WithTimeout(ctx, r.opts.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(bctx, http.MethodPost,
		r.opts.Coordinator+"/v1/fabric/register", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fabric: build heartbeat: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: heartbeat: %w", err)
	}
	defer resp.Body.Close()
	// Drain so the transport can reuse the connection.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return fmt.Errorf("fabric: heartbeat response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: heartbeat rejected: status %d", resp.StatusCode)
	}
	return nil
}
