package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

// Sentinel coordinator errors, matched by the HTTP layer.
var (
	// ErrNoWorkers means the ring is empty: nothing has registered, or
	// everything has been drained.
	ErrNoWorkers = errors.New("fabric: no live workers in the ring")
	// ErrAllReplicasFailed wraps the last leg error once every candidate
	// worker for a key has been tried.
	ErrAllReplicasFailed = errors.New("fabric: all replicas failed")
)

// CoordinatorOptions tunes the coordinator. Zero values take the
// documented defaults.
type CoordinatorOptions struct {
	// Vnodes per worker on the consistent-hash ring (default
	// DefaultVnodes).
	Vnodes int
	// HeartbeatTTL drains a worker after this much silence (default
	// DefaultHeartbeatTTL).
	HeartbeatTTL time.Duration
	// ExpireInterval is the janitor cadence (default HeartbeatTTL/2).
	ExpireInterval time.Duration
	// Replicas is how many ring successors a request may try, the owner
	// included (default 2: the owner plus one hedge/failover target).
	// Bounded by the live member count at routing time.
	Replicas int
	// HedgeDelay is how long the owner leg may stay silent before a
	// hedge leg is launched at the next replica (default 15s). Failures
	// fail over immediately regardless; the hedge only covers
	// stragglers. Keep it well above a cache-hit RTT and near the
	// tolerable tail: a hedge that fires during a long simulation
	// duplicates that simulation on a second worker (correct but
	// wasteful — determinism makes the results identical).
	HedgeDelay time.Duration
	// WorkerInflight bounds the coordinator's concurrent legs per
	// worker (default 32). At the bound, new legs for that worker wait;
	// the hedge timer keeps waiting legs from stalling a request whose
	// next replica is idle.
	WorkerInflight int
	// Client tunes the worker-leg HTTP client (retries, per-attempt
	// deadlines, per-endpoint breakers). The zero value takes
	// client.Options defaults.
	Client client.Options
	// GridFanout bounds how many sub-requests of one /v1/grid scatter
	// run concurrently (default 8).
	GridFanout int
}

const (
	defaultReplicas       = 2
	defaultHedgeDelay     = 15 * time.Second
	defaultWorkerInflight = 32
	defaultGridFanout     = 8
	maxGridConfigs        = 1024
	coordMaxBodyBytes     = 1 << 20
)

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if o.ExpireInterval <= 0 {
		o.ExpireInterval = o.HeartbeatTTL / 2
	}
	if o.Replicas <= 0 {
		o.Replicas = defaultReplicas
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = defaultHedgeDelay
	}
	if o.WorkerInflight <= 0 {
		o.WorkerInflight = defaultWorkerInflight
	}
	if o.GridFanout <= 0 {
		o.GridFanout = defaultGridFanout
	}
	return o
}

// Validate rejects unusable coordinator options.
func (o CoordinatorOptions) Validate() error {
	o = o.withDefaults()
	if o.Replicas > 64 {
		return fmt.Errorf("fabric: replicas must be <= 64 (got %d)", o.Replicas)
	}
	if o.WorkerInflight > 1<<16 {
		return fmt.Errorf("fabric: worker inflight bound must be <= %d (got %d)", 1<<16, o.WorkerInflight)
	}
	if o.GridFanout > 256 {
		return fmt.Errorf("fabric: grid fanout must be <= 256 (got %d)", o.GridFanout)
	}
	return o.Client.Validate()
}

// workerCounters is the coordinator's per-worker routing ledger.
type workerCounters struct {
	Routed    uint64 `json:"routed"`    // legs sent because the worker owned the key
	Failovers uint64 `json:"failovers"` // legs sent after a prior replica failed
	Hedges    uint64 `json:"hedges"`    // legs sent because a prior replica was slow
	Errors    uint64 `json:"errors"`    // legs that returned an error
}

// Coordinator shards the request space across registered workers via a
// consistent-hash ring keyed on the same content address the workers
// cache under, so every key has one home and the cluster never computes
// one result twice. It exposes the worker /v1 surface unchanged (plus
// /v1/cluster and /v1/grid), so clients built for one daemon — simload
// included — drive a cluster without modification.
type Coordinator struct {
	opts    CoordinatorOptions
	members *Membership
	cl      *client.Client
	mux     *http.ServeMux
	baseCtx context.Context

	requests  atomic.Uint64 // result-producing API requests
	errors    atomic.Uint64 // error responses on those endpoints
	hedges    atomic.Uint64 // hedge legs launched
	failovers atomic.Uint64 // failover legs launched
	noWorker  atomic.Uint64 // requests rejected for an empty ring

	mu        sync.Mutex
	slots     map[string]chan struct{}
	perWorker map[string]*workerCounters
	start     time.Time
	draining  bool
}

// NewCoordinator builds a coordinator whose background janitor (TTL
// expiry of silent workers) runs until ctx is cancelled. The caller
// owns ctx: cancel it on shutdown.
func NewCoordinator(ctx context.Context, o CoordinatorOptions) (*Coordinator, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	cl, err := client.New(o.Client)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:      o,
		members:   NewMembership(o.HeartbeatTTL, o.Vnodes),
		cl:        cl,
		baseCtx:   ctx,
		slots:     make(map[string]chan struct{}),
		perWorker: make(map[string]*workerCounters),
		start:     coordNow(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("GET /v1/experiments", c.handleExperiments)
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/sim", c.handleSim)
	mux.HandleFunc("POST /v1/grid", c.handleGrid)
	mux.HandleFunc("POST /v1/fabric/register", c.handleRegister)
	c.mux = mux
	go c.janitor(ctx)
	return c, nil
}

// coordNow is the fabric package's one sanctioned wall-clock read:
// heartbeat liveness, uptime, and hedge timing are operational
// metadata; every result body the coordinator serves is produced (and
// content-addressed) by a worker.
//
//lint:allow determinism operational timing only; result bodies come from workers verbatim
func coordNow() time.Time { return time.Now() }

// janitor drains workers whose heartbeats stopped.
func (c *Coordinator) janitor(ctx context.Context) {
	t := time.NewTicker(c.opts.ExpireInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.members.Expire()
		}
	}
}

// Handler returns the HTTP surface.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Membership exposes the registry (tests and cmd wiring).
func (c *Coordinator) Membership() *Membership { return c.members }

// BeginDrain fails readiness and rejects new result-producing work with
// 503 so load balancers move on while in-flight legs finish.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

func (c *Coordinator) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// --- routing ---------------------------------------------------------

// slot returns the bounded-fan-out semaphore for one worker.
func (c *Coordinator) slot(worker string) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.slots[worker]
	if !ok {
		s = make(chan struct{}, c.opts.WorkerInflight)
		c.slots[worker] = s
	}
	return s
}

func (c *Coordinator) count(worker string, f func(*workerCounters)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wc, ok := c.perWorker[worker]
	if !ok {
		wc = &workerCounters{}
		c.perWorker[worker] = wc
	}
	f(wc)
}

// legResult is one worker leg's outcome.
type legResult struct {
	worker string
	res    client.Result
	err    error
}

// leg runs one forwarded request against one worker under the
// per-worker fan-out bound. The client layer supplies retries with
// backoff, per-attempt deadlines, and the worker's own circuit breaker.
func (c *Coordinator) leg(ctx context.Context, worker, addr, path string, body []byte) legResult {
	sem := c.slot(worker)
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return legResult{worker: worker, err: fmt.Errorf("fabric: gave up waiting for a %s slot: %w", worker, ctx.Err())}
	}
	defer func() { <-sem }()
	var (
		res client.Result
		err error
	)
	if body != nil {
		res, err = c.cl.PostJSON(ctx, addr+path, body)
	} else {
		res, err = c.cl.Get(ctx, addr+path)
	}
	if err != nil {
		c.count(worker, func(w *workerCounters) { w.Errors++ })
	}
	return legResult{worker: worker, res: res, err: err}
}

// forward routes one request by its content-address key: the ring
// owner first, then — on failure immediately, or on HedgeDelay of
// silence — the next replicas in ring-walk order. The first successful
// leg wins; determinism makes duplicate completions byte-identical, so
// discarding losers is free.
func (c *Coordinator) forward(ctx context.Context, path string, body []byte, key string) (client.Result, string, error) {
	candidates := c.members.Ring().Lookup(key, c.opts.Replicas)
	if len(candidates) == 0 {
		c.noWorker.Add(1)
		return client.Result{}, "", ErrNoWorkers
	}

	results := make(chan legResult, len(candidates))
	launch := func(i int, kind string) {
		worker := candidates[i]
		addr, ok := c.members.Addr(worker)
		if !ok {
			// Drained between Lookup and now; the buffered channel makes
			// this send non-blocking, so failing the leg without a network
			// hop is safe even mid-select.
			results <- legResult{worker: worker, err: fmt.Errorf("fabric: %s left the ring", worker)}
			return
		}
		switch kind {
		case "route":
			c.count(worker, func(w *workerCounters) { w.Routed++ })
		case "failover":
			c.failovers.Add(1)
			c.count(worker, func(w *workerCounters) { w.Failovers++ })
		case "hedge":
			c.hedges.Add(1)
			c.count(worker, func(w *workerCounters) { w.Hedges++ })
		}
		go func() {
			r := c.leg(ctx, worker, addr, path, body)
			select {
			case results <- r:
			case <-ctx.Done(): // request abandoned; drop the leg result
			}
		}()
	}

	next := 0
	launch(next, "route")
	next++
	inFlight := 1
	hedge := time.NewTimer(c.opts.HedgeDelay)
	defer hedge.Stop()
	var lastErr error
	for {
		select {
		case r := <-results:
			if r.err == nil {
				return r.res, r.worker, nil
			}
			lastErr = r.err
			inFlight--
			if next < len(candidates) {
				launch(next, "failover")
				next++
				inFlight++
			} else if inFlight == 0 {
				return client.Result{}, "", fmt.Errorf("%w: %w", ErrAllReplicasFailed, lastErr)
			}
		case <-hedge.C:
			if next < len(candidates) {
				launch(next, "hedge")
				next++
				inFlight++
			}
		case <-ctx.Done():
			return client.Result{}, "", fmt.Errorf("fabric: request abandoned: %w", ctx.Err())
		}
	}
}

// --- HTTP helpers ----------------------------------------------------

func coordWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":"encode: %s"}`, err)
		return
	}
	w.Write(append(data, '\n'))
}

// coordFail maps a routing error onto the status a resilient client
// expects: empty ring and drain are 503 (retry later, elsewhere), a
// fully failed scatter is 502 (the cluster is unhealthy, retryable),
// bad requests are 400.
func (c *Coordinator) coordFail(w http.ResponseWriter, err error) {
	c.errors.Add(1)
	status := http.StatusBadGateway
	switch {
	case errors.Is(err, service.ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNoWorkers), errors.Is(err, service.ErrDraining):
		status = http.StatusServiceUnavailable
	}
	if c.isDraining() && status != http.StatusBadRequest {
		status = http.StatusServiceUnavailable
	}
	switch status {
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "2")
	case http.StatusBadGateway:
		w.Header().Set("Retry-After", "1")
	}
	coordWriteJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// relay copies a winning leg's response to the client: the body
// verbatim (byte-identity end to end) and the serving metadata headers,
// X-Fabric-Worker included, plus which replica index answered.
func relay(w http.ResponseWriter, res client.Result, worker string) {
	h := w.Header()
	for _, name := range []string{"Content-Type", "X-Cache", "X-Cache-Tier", "X-Cache-Key", "X-Elapsed-Us", service.WorkerHeader} {
		if v := res.Header.Get(name); v != "" {
			h.Set(name, v)
		}
	}
	// A worker not started in worker mode has no identity header; the
	// coordinator still attributes the route by member ID.
	if h.Get(service.WorkerHeader) == "" {
		h.Set(service.WorkerHeader, worker)
	}
	h.Set("X-Fabric-Attempts", strconv.Itoa(res.Attempts))
	w.Write(res.Body)
}

func coordDecode(w http.ResponseWriter, r *http.Request, into any) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, coordMaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %w", service.ErrBadRequest, err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return nil, fmt.Errorf("%w: invalid JSON body: %w", service.ErrBadRequest, err)
	}
	return raw, nil
}

// --- handlers --------------------------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c.members.Expire()
	n := c.members.Ring().Size()
	body := struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}{Status: "ready", Workers: n}
	status := http.StatusOK
	switch {
	case c.isDraining():
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	case n == 0:
		body.Status = "no-workers"
		status = http.StatusServiceUnavailable
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "2")
	}
	coordWriteJSON(w, status, body)
}

// ClusterWorker is one worker's row in the /v1/cluster report: the
// membership view (liveness, last reported cache stats) joined with the
// coordinator's routing ledger and the leg client's breaker state.
type ClusterWorker struct {
	Member
	Routing workerCounters       `json:"routing"`
	Breaker *client.BreakerState `json:"breaker,omitempty"`
}

// ClusterState is the /v1/cluster response body.
type ClusterState struct {
	CodeVersion string          `json:"code_version"`
	Vnodes      int             `json:"vnodes"`
	Replicas    int             `json:"replicas"`
	RingVersion uint64          `json:"ring_version"`
	Workers     []ClusterWorker `json:"workers"`
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	c.members.Expire()
	snap := c.members.Snapshot()
	breakers := map[string]client.BreakerState{}
	for _, b := range c.cl.BreakerStates() {
		breakers[b.Endpoint] = b
	}
	workers := make([]ClusterWorker, 0, len(snap))
	for _, m := range snap {
		cw := ClusterWorker{Member: m}
		c.mu.Lock()
		if wc, ok := c.perWorker[m.ID]; ok {
			cw.Routing = *wc
		}
		c.mu.Unlock()
		if b, ok := breakers[client.Endpoint(m.Addr)]; ok {
			b := b
			cw.Breaker = &b
		}
		workers = append(workers, cw)
	}
	coordWriteJSON(w, http.StatusOK, ClusterState{
		CodeVersion: service.CodeVersion,
		Vnodes:      c.opts.Vnodes,
		Replicas:    c.opts.Replicas,
		RingVersion: c.members.Version(),
		Workers:     workers,
	})
}

// MetricsSnapshot is the coordinator's /metrics body.
type MetricsSnapshot struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Requests      uint64                    `json:"requests"`
	Errors        uint64                    `json:"errors"`
	Hedges        uint64                    `json:"hedges"`
	Failovers     uint64                    `json:"failovers"`
	NoWorker      uint64                    `json:"no_worker_rejects"`
	Workers       int                       `json:"workers"`
	PerWorker     map[string]workerCounters `json:"per_worker"`
	Client        client.Stats              `json:"client"`
	CodeVersion   string                    `json:"code_version"`
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	per := map[string]workerCounters{}
	c.mu.Lock()
	//lint:allow determinism JSON object key order is canonicalized by encoding/json
	for id, wc := range c.perWorker {
		per[id] = *wc
	}
	c.mu.Unlock()
	coordWriteJSON(w, http.StatusOK, MetricsSnapshot{
		UptimeSeconds: coordNow().Sub(c.start).Seconds(),
		Requests:      c.requests.Load(),
		Errors:        c.errors.Load(),
		Hedges:        c.hedges.Load(),
		Failovers:     c.failovers.Load(),
		NoWorker:      c.noWorker.Load(),
		Workers:       c.members.Ring().Size(),
		PerWorker:     per,
		Client:        c.cl.Stats(),
		CodeVersion:   service.CodeVersion,
	})
}

// handleExperiments forwards the registry listing to a worker: every
// worker runs the same binary, so any live one answers identically.
func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	res, worker, err := c.forward(r.Context(), "/v1/experiments", nil, "meta:experiments")
	if err != nil {
		c.coordFail(w, err)
		return
	}
	relay(w, res, worker)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	var req service.SweepRequest
	raw, err := coordDecode(w, r, &req)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	key, err := service.SweepKey(req)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	if c.isDraining() {
		c.coordFail(w, fmt.Errorf("fabric: coordinator: %w", service.ErrDraining))
		return
	}
	res, worker, err := c.forward(r.Context(), "/v1/sweep", raw, key)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	relay(w, res, worker)
}

func (c *Coordinator) handleSim(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	var req service.SimRequest
	raw, err := coordDecode(w, r, &req)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	key, err := service.SimKey(req)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	if c.isDraining() {
		c.coordFail(w, fmt.Errorf("fabric: coordinator: %w", service.ErrDraining))
		return
	}
	res, worker, err := c.forward(r.Context(), "/v1/sim", raw, key)
	if err != nil {
		c.coordFail(w, err)
		return
	}
	relay(w, res, worker)
}

// GridRequest is a multi-configuration experiment sweep: one workload
// setting applied to every configuration of a design-space grid. The
// coordinator scatters it — one routed /v1/sim sub-request per
// configuration, each landing on the worker that owns its content
// address — and gathers the results in input order.
type GridRequest struct {
	Configs []experiments.ConfigSpec `json:"configs"`
	// Scale, Level, TimeSlice, MaxInstructions as in service.SimRequest.
	Scale           int    `json:"scale,omitempty"`
	Level           int    `json:"level,omitempty"`
	TimeSlice       uint64 `json:"time_slice,omitempty"`
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
}

// GridEntry is one gathered sub-result: the configuration's content
// address plus the worker's SimResponse body, verbatim. Entries appear
// in the same order as the request's configs, so the merged body is
// deterministic: the same grid always serializes to the same bytes no
// matter which workers answered or in what order.
type GridEntry struct {
	Key      string          `json:"key"`
	Response json.RawMessage `json:"response"`
}

// GridResponse is the merged scatter-gather result.
type GridResponse struct {
	CodeVersion string      `json:"code_version"`
	Count       int         `json:"count"`
	Entries     []GridEntry `json:"entries"`
}

func (c *Coordinator) handleGrid(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	var req GridRequest
	if _, err := coordDecode(w, r, &req); err != nil {
		c.coordFail(w, err)
		return
	}
	if len(req.Configs) == 0 {
		c.coordFail(w, fmt.Errorf("%w: grid needs at least one config", service.ErrBadRequest))
		return
	}
	if len(req.Configs) > maxGridConfigs {
		c.coordFail(w, fmt.Errorf("%w: grid of %d configs exceeds the %d bound", service.ErrBadRequest, len(req.Configs), maxGridConfigs))
		return
	}

	// Validate and key every sub-request before routing any: a bad grid
	// point is the client's bug and must not burn cluster work.
	type subReq struct {
		key  string
		body []byte
	}
	subs := make([]subReq, len(req.Configs))
	for i, spec := range req.Configs {
		sr := service.SimRequest{
			Config:          spec,
			Scale:           req.Scale,
			Level:           req.Level,
			TimeSlice:       req.TimeSlice,
			MaxInstructions: req.MaxInstructions,
		}
		key, err := service.SimKey(sr)
		if err != nil {
			c.coordFail(w, fmt.Errorf("config[%d]: %w", i, err))
			return
		}
		body, err := json.Marshal(sr)
		if err != nil {
			c.coordFail(w, fmt.Errorf("config[%d]: marshal: %w", i, err))
			return
		}
		subs[i] = subReq{key: key, body: body}
	}
	if c.isDraining() {
		c.coordFail(w, fmt.Errorf("fabric: coordinator: %w", service.ErrDraining))
		return
	}

	// Scatter under the fan-out bound; gather by index so the merged
	// body is input-ordered regardless of completion order.
	entries := make([]GridEntry, len(subs))
	errs := make([]error, len(subs))
	sem := make(chan struct{}, c.opts.GridFanout)
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-r.Context().Done():
				errs[i] = fmt.Errorf("fabric: grid abandoned: %w", r.Context().Err())
				return
			}
			defer func() { <-sem }()
			res, _, err := c.forward(r.Context(), "/v1/sim", subs[i].body, subs[i].key)
			if err != nil {
				errs[i] = err
				return
			}
			entries[i] = GridEntry{Key: subs[i].key, Response: json.RawMessage(res.Body)}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.coordFail(w, fmt.Errorf("fabric: grid config[%d]: %w", i, err))
			return
		}
	}
	coordWriteJSON(w, http.StatusOK, GridResponse{
		CodeVersion: service.CodeVersion,
		Count:       len(entries),
		Entries:     entries,
	})
}

// RegisterRequest is a worker's heartbeat body.
type RegisterRequest struct {
	ID    string      `json:"id"`
	Addr  string      `json:"addr"`
	Stats WorkerStats `json:"stats"`
}

// RegisterResponse acknowledges a heartbeat and tells the worker how
// fast to come back.
type RegisterResponse struct {
	Status            string  `json:"status"` // joined | ok
	HeartbeatSeconds  float64 `json:"heartbeat_seconds"`
	MembershipVersion uint64  `json:"membership_version"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if _, err := coordDecode(w, r, &req); err != nil {
		c.coordFail(w, err)
		return
	}
	if req.ID == "" || req.Addr == "" {
		c.coordFail(w, fmt.Errorf("%w: register needs id and addr", service.ErrBadRequest))
		return
	}
	joined := c.members.Heartbeat(req.ID, req.Addr, req.Stats)
	status := "ok"
	if joined {
		status = "joined"
	}
	coordWriteJSON(w, http.StatusOK, RegisterResponse{
		Status:            status,
		HeartbeatSeconds:  (c.opts.HeartbeatTTL / 3).Seconds(),
		MembershipVersion: c.members.Version(),
	})
}
