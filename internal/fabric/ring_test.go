package fabric

import (
	"fmt"
	"reflect"
	"testing"
)

// keys returns n distinct content-address-shaped keys.
func testKeys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return ks
}

func members(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("worker-%d", i)
	}
	return ms
}

// TestRingDeterministic: the same member set — in any order — yields
// byte-identical routing. This is what lets a worker leave and rejoin
// without any key that stayed put moving, and two coordinators agree
// without talking to each other.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"w2", "w0", "w1"}, 64)
	b := NewRing([]string{"w1", "w2", "w0"}, 64)
	c := NewRing([]string{"w0", "w1", "w2", "w1"}, 64) // dup collapses

	if !reflect.DeepEqual(a.Members(), []string{"w0", "w1", "w2"}) {
		t.Fatalf("members %v", a.Members())
	}
	for _, key := range testKeys(500) {
		ra, rb, rc := a.Lookup(key, 3), b.Lookup(key, 3), c.Lookup(key, 3)
		if !reflect.DeepEqual(ra, rb) || !reflect.DeepEqual(ra, rc) {
			t.Fatalf("key %s routes differently: %v %v %v", key[:8], ra, rb, rc)
		}
		if len(ra) != 3 || ra[0] == ra[1] || ra[1] == ra[2] || ra[0] == ra[2] {
			t.Fatalf("lookup must return distinct members in walk order: %v", ra)
		}
	}
}

// TestRingKeyMovementBound pins the consistent-hashing contract: going
// from N to N+1 members moves only the keys the new member claims —
// about K/(N+1) of them — and every moved key moves *to* the new
// member. Leaving reverses it exactly.
func TestRingKeyMovementBound(t *testing.T) {
	const K = 4000
	keys := testKeys(K)
	for _, n := range []int{2, 3, 5, 8} {
		base := NewRing(members(n), 64)
		grown := NewRing(append(members(n), "worker-new"), 64)

		moved := 0
		for _, key := range keys {
			ob, _ := base.Owner(key)
			og, _ := grown.Owner(key)
			if ob != og {
				moved++
				if og != "worker-new" {
					t.Fatalf("n=%d key %s moved %s -> %s, not to the joining member", n, key[:8], ob, og)
				}
			}
		}
		// Expectation is K/(n+1); allow 2x slack for hash variance at 64
		// vnodes. The point of the bound is the order of magnitude: a
		// modulo-hash scheme would move ~n/(n+1) of all keys.
		bound := 2 * K / (n + 1)
		if moved == 0 || moved > bound {
			t.Errorf("n=%d: %d/%d keys moved on join, want (0, %d]", n, moved, K, bound)
		}

		// Leave = the inverse join: removing the member it just added
		// restores every assignment.
		shrunk := NewRing(append(members(n), "worker-new"), 64)
		back := NewRing(members(n), 64)
		_ = shrunk
		for _, key := range keys {
			ob, _ := base.Owner(key)
			oback, _ := back.Owner(key)
			if ob != oback {
				t.Fatalf("n=%d: rebuild of the same set changed owner of %s", n, key[:8])
			}
		}
	}
}

// TestRingChurnStability drives a join/leave/rejoin sequence and checks
// two properties at every step: keys whose owner survived the change
// keep their owner, and a full leave+rejoin restores the original
// routing (so a worker bouncing through a TTL expiry gets its shard —
// and its warm disk store — back).
func TestRingChurnStability(t *testing.T) {
	keys := testKeys(2000)
	owners := func(r *Ring) map[string]string {
		m := make(map[string]string, len(keys))
		for _, k := range keys {
			o, err := r.Owner(k)
			if err != nil {
				t.Fatal(err)
			}
			m[k] = o
		}
		return m
	}

	set := []string{"w0", "w1", "w2"}
	r0 := NewRing(set, 64)
	o0 := owners(r0)

	// Step 1: w1 dies.
	r1 := NewRing([]string{"w0", "w2"}, 64)
	o1 := owners(r1)
	for _, k := range keys {
		if o0[k] != "w1" && o1[k] != o0[k] {
			t.Fatalf("key %s owned by surviving %s moved to %s when w1 left", k[:8], o0[k], o1[k])
		}
		if o0[k] == "w1" && (o1[k] != "w0" && o1[k] != "w2") {
			t.Fatalf("orphaned key %s routed nowhere: %s", k[:8], o1[k])
		}
	}

	// Step 2: w3 joins the degraded ring.
	r2 := NewRing([]string{"w0", "w2", "w3"}, 64)
	o2 := owners(r2)
	for _, k := range keys {
		if o2[k] != o1[k] && o2[k] != "w3" {
			t.Fatalf("key %s moved %s -> %s on w3 join (only moves to w3 are legal)", k[:8], o1[k], o2[k])
		}
	}

	// Step 3: w1 rejoins, w3 leaves — back to a 3-set containing w1.
	r3 := NewRing([]string{"w0", "w1", "w2"}, 64)
	o3 := owners(r3)
	if !reflect.DeepEqual(o0, o3) {
		diff := 0
		for k := range o0 {
			if o0[k] != o3[k] {
				diff++
			}
		}
		t.Fatalf("leave+rejoin did not restore routing: %d/%d keys differ", diff, len(keys))
	}
}

// TestRingDistribution sanity-checks vnode smoothing: no member owns a
// grossly disproportionate share of keys.
func TestRingDistribution(t *testing.T) {
	const K = 8000
	r := NewRing(members(4), DefaultVnodes)
	counts := map[string]int{}
	for _, k := range testKeys(K) {
		o, _ := r.Owner(k)
		counts[o]++
	}
	for _, m := range r.Members() {
		share := float64(counts[m]) / K
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys; vnode smoothing is broken (%v)", m, 100*share, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Lookup("abc", 2); got != nil {
		t.Fatalf("empty ring lookup = %v", got)
	}
	if _, err := empty.Owner("abc"); err == nil {
		t.Fatal("empty ring must error on Owner")
	}
	one := NewRing([]string{"solo"}, 8)
	if got, _ := one.Owner("anything"); got != "solo" {
		t.Fatalf("single-member ring owner = %q", got)
	}
	if got := one.Lookup("anything", 5); len(got) != 1 {
		t.Fatalf("lookup beyond member count = %v", got)
	}
	// n <= 0 means "all members, walk order".
	three := NewRing(members(3), 8)
	if got := three.Lookup("k", 0); len(got) != 3 {
		t.Fatalf("Lookup(k, 0) = %v, want all members", got)
	}
}
