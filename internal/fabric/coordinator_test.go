package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

// fakeWorker is a stand-in cachesimd: it answers every /v1 request with
// a deterministic JSON body (so byte-identity assertions hold no matter
// which worker answers a re-routed request) and stamps its fabric
// identity header like a real worker daemon.
type fakeWorker struct {
	id      string
	srv     *httptest.Server
	hits    atomic.Int64
	delayNs atomic.Int64
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	w := &fakeWorker{id: id}
	w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		if d := w.delayNs.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		h := rw.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-Cache", "miss")
		h.Set("X-Cache-Key", "deadbeef")
		h.Set(service.WorkerHeader, id)
		// Body depends only on the request, never on the worker: real
		// workers are deterministic the same way.
		fmt.Fprintf(rw, `{"path":%q,"echo":%q}`, r.URL.Path, string(body))
	}))
	t.Cleanup(w.srv.Close)
	return w
}

func testCoordOptions() CoordinatorOptions {
	return CoordinatorOptions{
		// Fast-failing legs; the breaker is exercised in client tests.
		Client: client.Options{
			MaxAttempts:      2,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       5 * time.Millisecond,
			AttemptTimeout:   5 * time.Second,
			BreakerThreshold: -1,
		},
	}
}

func newTestCoordinator(t *testing.T, o CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	c, err := NewCoordinator(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func register(t *testing.T, coordURL string, w *fakeWorker) {
	t.Helper()
	registerAddr(t, coordURL, w.id, w.srv.URL)
}

func registerAddr(t *testing.T, coordURL, id, addr string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"addr":%q,"stats":{"cache_hits":7,"cache_misses":3,"in_flight":1}}`, id, addr)
	resp, err := http.Post(coordURL+"/v1/fabric/register", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("register %s: %d %s", id, resp.StatusCode, data)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestCoordinatorNoWorkersIs503(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())

	resp, body := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: status %d body %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers: %d, want 503", rz.StatusCode)
	}
}

// TestCoordinatorRoutesByContentAddress: every request lands on the
// ring owner of its content address, repeatedly — the property that
// keeps each shard's cache hot and makes the cluster compute nothing
// twice.
func TestCoordinatorRoutesByContentAddress(t *testing.T) {
	c, ts := newTestCoordinator(t, testCoordOptions())
	workers := map[string]*fakeWorker{}
	for _, id := range []string{"w1", "w2", "w3"} {
		w := newFakeWorker(t, id)
		workers[id] = w
		register(t, ts.URL, w)
	}

	for scale := 1; scale <= 16; scale++ {
		req := service.SweepRequest{Experiment: "fig5", Scale: scale}
		key, err := service.SweepKey(req)
		if err != nil {
			t.Fatal(err)
		}
		owner, err := c.Membership().Ring().Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"experiment":"fig5","scale":%d}`, scale)
		for rep := 0; rep < 2; rep++ {
			resp, data := postJSON(t, ts.URL+"/v1/sweep", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scale %d: %d %s", scale, resp.StatusCode, data)
			}
			if got := resp.Header.Get(service.WorkerHeader); got != owner {
				t.Fatalf("scale %d rep %d served by %q, ring owner is %q", scale, rep, got, owner)
			}
		}
	}
	// 16 keys over 3 workers: the deterministic ring spreads them.
	for id, w := range workers {
		if w.hits.Load() == 0 {
			t.Errorf("worker %s received no routes across 16 keys", id)
		}
	}
}

// TestCoordinatorFailover: a dead owner must not surface as an error —
// the coordinator fails over to the next ring replica.
func TestCoordinatorFailover(t *testing.T) {
	c, ts := newTestCoordinator(t, testCoordOptions())
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	register(t, ts.URL, w1)
	register(t, ts.URL, w2)

	req := service.SweepRequest{Experiment: "fig5"}
	key, err := service.SweepKey(req)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := c.Membership().Ring().Owner(key)
	if err != nil {
		t.Fatal(err)
	}
	victim, survivor := w1, w2
	if owner == "w2" {
		victim, survivor = w2, w1
	}
	victim.srv.Close()

	resp, data := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover request: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(service.WorkerHeader); got != survivor.id {
		t.Fatalf("served by %q, want survivor %q", got, survivor.id)
	}
	if c.failovers.Load() == 0 {
		t.Fatal("failover counter not incremented")
	}

	// After the membership drains the dead worker, routing goes straight
	// to the survivor: no failover hop, no error.
	c.Membership().Remove(victim.id)
	before := c.failovers.Load()
	resp2, data2 := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request: %d %s", resp2.StatusCode, data2)
	}
	if got := c.failovers.Load(); got != before {
		t.Fatalf("post-drain request needed a failover (%d -> %d)", before, got)
	}
}

// TestCoordinatorHedgesSlowOwner: a straggling owner triggers a hedge
// leg at the next replica after HedgeDelay; the fast replica's answer
// wins.
func TestCoordinatorHedgesSlowOwner(t *testing.T) {
	o := testCoordOptions()
	o.HedgeDelay = 10 * time.Millisecond
	c, ts := newTestCoordinator(t, o)
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	register(t, ts.URL, w1)
	register(t, ts.URL, w2)

	key, err := service.SweepKey(service.SweepRequest{Experiment: "fig5"})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := c.Membership().Ring().Owner(key)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := w1, w2
	if owner == "w2" {
		slow, fast = w2, w1
	}
	slow.delayNs.Store(int64(2 * time.Second))

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(service.WorkerHeader); got != fast.id {
		t.Fatalf("served by %q, want hedge target %q", got, fast.id)
	}
	if c.hedges.Load() == 0 {
		t.Fatal("hedge counter not incremented")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("request waited out the slow owner (%v); the hedge should have won", elapsed)
	}
}

// TestCoordinatorGridScatterGather: a multi-config grid is split into
// per-config sub-requests, routed independently, and merged in input
// order into a byte-stable body.
func TestCoordinatorGridScatterGather(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())
	for _, id := range []string{"w1", "w2", "w3"} {
		register(t, ts.URL, newFakeWorker(t, id))
	}

	grid := `{"configs":[{"preset":"base"},{"preset":"optimized"},{"preset":"base","policy":"wmi"},{"preset":"base","policy":"subblock"}],"level":2}`
	resp, body := postJSON(t, ts.URL+"/v1/grid", grid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: %d %s", resp.StatusCode, body)
	}
	var gr GridResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Count != 4 || len(gr.Entries) != 4 {
		t.Fatalf("grid count %d entries %d, want 4", gr.Count, len(gr.Entries))
	}
	if gr.CodeVersion != service.CodeVersion {
		t.Fatalf("grid code_version %q", gr.CodeVersion)
	}
	// Entries come back in input order, keyed by the same content
	// address the coordinator routes on.
	specs := []experiments.ConfigSpec{
		{Preset: "base"}, {Preset: "optimized"},
		{Preset: "base", Policy: "wmi"}, {Preset: "base", Policy: "subblock"},
	}
	for i, spec := range specs {
		want, err := service.SimKey(service.SimRequest{Config: spec, Level: 2})
		if err != nil {
			t.Fatal(err)
		}
		if gr.Entries[i].Key != want {
			t.Fatalf("entry %d key %s, want %s", i, gr.Entries[i].Key, want)
		}
		if !bytes.Contains(gr.Entries[i].Response, []byte("/v1/sim")) {
			t.Fatalf("entry %d response not from /v1/sim: %s", i, gr.Entries[i].Response)
		}
	}

	// The merged body is deterministic: same grid, same bytes.
	resp2, body2 := postJSON(t, ts.URL+"/v1/grid", grid)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("grid repeat: %d", resp2.StatusCode)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("grid responses differ between identical requests:\n%s\nvs\n%s", body, body2)
	}
}

func TestCoordinatorGridValidation(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())
	w := newFakeWorker(t, "w1")
	register(t, ts.URL, w)

	cases := []struct{ name, body string }{
		{"empty grid", `{"configs":[]}`},
		{"bad preset", `{"configs":[{"preset":"turbo"}]}`},
		{"bad scale", `{"configs":[{"preset":"base"}],"scale":9999}`},
		{"unknown field", `{"configs":[{"preset":"base"}],"screening":true}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/grid", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", c.name, resp.StatusCode, body)
		}
	}
	if w.hits.Load() != 0 {
		t.Fatalf("invalid grids reached a worker %d times; validation must be local", w.hits.Load())
	}
}

func TestCoordinatorClusterReport(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())
	register(t, ts.URL, newFakeWorker(t, "w1"))
	register(t, ts.URL, newFakeWorker(t, "w2"))
	if resp, data := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterState
	if err := json.Unmarshal(body, &cs); err != nil {
		t.Fatalf("cluster decode: %v\n%s", err, body)
	}
	if cs.CodeVersion != service.CodeVersion || cs.Vnodes != DefaultVnodes || cs.Replicas != 2 {
		t.Fatalf("cluster header fields wrong: %+v", cs)
	}
	if cs.RingVersion == 0 {
		t.Fatal("ring_version is 0 after two joins")
	}
	if len(cs.Workers) != 2 || cs.Workers[0].ID != "w1" || cs.Workers[1].ID != "w2" {
		t.Fatalf("workers not sorted by id: %+v", cs.Workers)
	}
	var routed uint64
	for _, w := range cs.Workers {
		if w.Stats.CacheHits != 7 || w.Stats.CacheMisses != 3 || w.Stats.InFlight != 1 {
			t.Fatalf("worker %s heartbeat stats lost: %+v", w.ID, w.Stats)
		}
		routed += w.Routing.Routed
	}
	if routed == 0 {
		t.Fatal("no worker shows a routed request after a served sweep")
	}
}

func TestCoordinatorRejectsBadRequests(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())
	w := newFakeWorker(t, "w1")
	register(t, ts.URL, w)

	cases := []struct{ name, path, body string }{
		{"unknown experiment", "/v1/sweep", `{"experiment":"fig99"}`},
		{"unknown field", "/v1/sweep", `{"experiment":"fig5","screening":true}`},
		{"bad sim scale", "/v1/sim", `{"config":{"preset":"base"},"scale":-1}`},
		{"register missing id", "/v1/fabric/register", `{"addr":"http://x"}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", c.name, resp.StatusCode, body)
		}
	}
	if w.hits.Load() != 0 {
		t.Fatalf("invalid requests reached a worker %d times", w.hits.Load())
	}
}

// TestCoordinatorExperimentsProxy: the registry listing is forwarded to
// a live worker so clients see the workers' own capabilities.
func TestCoordinatorExperimentsProxy(t *testing.T) {
	_, ts := newTestCoordinator(t, testCoordOptions())
	register(t, ts.URL, newFakeWorker(t, "w1"))

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments proxy: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("/v1/experiments")) {
		t.Fatalf("experiments response not proxied: %s", body)
	}
	if resp.Header.Get(service.WorkerHeader) != "w1" {
		t.Fatal("proxied response lost worker attribution")
	}
}

func TestCoordinatorDrain(t *testing.T) {
	c, ts := newTestCoordinator(t, testCoordOptions())
	register(t, ts.URL, newFakeWorker(t, "w1"))
	c.BeginDrain()

	resp, _ := postJSON(t, ts.URL+"/v1/sweep", `{"experiment":"fig5"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: %d, want 503", resp.StatusCode)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	data, err := io.ReadAll(rz.Body)
	if err != nil {
		t.Fatal(err)
	}
	if rz.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(data, []byte("draining")) {
		t.Fatalf("readyz while draining: %d %s", rz.StatusCode, data)
	}
}

// TestRegistrarHeartbeats: the worker-side loop registers immediately,
// keeps beating, reports stats, and stops on context cancel.
func TestRegistrarHeartbeats(t *testing.T) {
	c, ts := newTestCoordinator(t, testCoordOptions())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var hits atomic.Uint64
	reg, err := StartRegistrar(ctx, RegistrarOptions{
		Coordinator: ts.URL,
		ID:          "w-reg",
		Addr:        "http://127.0.0.1:1",
		Interval:    5 * time.Millisecond,
		Stats:       func() WorkerStats { return WorkerStats{CacheHits: hits.Add(1)} },
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for reg.Beats() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d beats after 2s (failures=%d)", reg.Beats(), reg.Failures())
		}
		time.Sleep(time.Millisecond)
	}
	snap := c.Membership().Snapshot()
	if len(snap) != 1 || snap[0].ID != "w-reg" || snap[0].Stats.CacheHits == 0 {
		t.Fatalf("membership after heartbeats: %+v", snap)
	}

	cancel()
	reg.Wait()
	stopped := reg.Beats()
	time.Sleep(20 * time.Millisecond)
	if reg.Beats() != stopped {
		t.Fatal("registrar kept beating after cancel")
	}
}

func TestRegistrarValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := StartRegistrar(ctx, RegistrarOptions{ID: "x"}); err == nil {
		t.Fatal("registrar without coordinator/addr must fail")
	}
}
