package fabric

import (
	"sort"
	"sync"
	"time"
)

// WorkerStats is the small operational snapshot a worker piggybacks on
// each heartbeat, surfaced per worker on /v1/cluster so ring skew and
// per-shard cache health are visible without scraping N daemons.
type WorkerStats struct {
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	InFlight    int64  `json:"in_flight"`
}

// Member is one registered worker as the coordinator sees it.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"` // base URL, e.g. http://127.0.0.1:9001
	// AgeSeconds and SinceHeartbeatSeconds are derived at snapshot time;
	// absolute wall-clock instants never leave the coordinator.
	AgeSeconds            float64     `json:"age_seconds"`
	SinceHeartbeatSeconds float64     `json:"since_heartbeat_seconds"`
	Stats                 WorkerStats `json:"stats"`
}

// member is the internal record behind a Member snapshot.
type member struct {
	id       string
	addr     string
	joined   time.Time
	lastSeen time.Time
	stats    WorkerStats
}

// Membership is the heartbeat-driven worker registry. Workers join by
// heartbeating and leave by missing them: Expire drains anyone silent
// for longer than the TTL. The consistent-hash ring is rebuilt on every
// change of the member *set* (not on every heartbeat) and shared
// read-only, so routing is lock-free once looked up.
type Membership struct {
	ttl    time.Duration
	vnodes int

	mu      sync.Mutex
	members map[string]*member
	ring    *Ring  // current ring; rebuilt when the member set changes
	version uint64 // bumped on every membership change

	now func() time.Time // injectable for tests
}

// NewMembership builds an empty registry. ttl <= 0 defaults to
// DefaultHeartbeatTTL; vnodes <= 0 defaults to DefaultVnodes.
func NewMembership(ttl time.Duration, vnodes int) *Membership {
	if ttl <= 0 {
		ttl = DefaultHeartbeatTTL
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Membership{
		ttl:     ttl,
		vnodes:  vnodes,
		members: make(map[string]*member),
		ring:    NewRing(nil, vnodes),
		//lint:allow determinism heartbeat liveness is operational timing, never part of a result body
		now: func() time.Time { return time.Now() },
	}
}

// DefaultHeartbeatTTL is how long a silent worker stays in the ring.
// Three missed 1s heartbeats plus slack: fast enough that a dead worker
// stops receiving routes within a few seconds, slow enough that one
// dropped packet doesn't reshuffle the ring.
const DefaultHeartbeatTTL = 5 * time.Second

// Heartbeat registers or refreshes a worker and records its stats
// snapshot. It reports whether this call changed the member set (a new
// worker, or an address change for an existing ID — the latter counts
// as a change because routed traffic must move to the new address).
func (m *Membership) Heartbeat(id, addr string, ws WorkerStats) (joined bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	mem, ok := m.members[id]
	if !ok {
		m.members[id] = &member{id: id, addr: addr, joined: t, lastSeen: t, stats: ws}
		m.rebuildLocked()
		return true
	}
	changed := mem.addr != addr
	mem.addr = addr
	mem.lastSeen = t
	mem.stats = ws
	if changed {
		m.version++
	}
	return changed
}

// Expire drains every worker whose last heartbeat is older than the
// TTL, returning the removed IDs (sorted). The ring is rebuilt once if
// anything was removed; survivors keep their vnode positions, so only
// the drained workers' key ranges move (ring_test.go pins the bound).
func (m *Membership) Expire() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-m.ttl)
	var removed []string
	//lint:allow determinism removals are collected and sorted below
	for id, mem := range m.members {
		if mem.lastSeen.Before(cutoff) {
			removed = append(removed, id)
		}
	}
	if len(removed) == 0 {
		return nil
	}
	sort.Strings(removed)
	for _, id := range removed {
		delete(m.members, id)
	}
	m.rebuildLocked()
	return removed
}

// Remove drains one worker immediately (the coordinator calls this when
// a worker answers in a way that proves it is gone, rather than waiting
// a full TTL). Reports whether the worker was present.
func (m *Membership) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[id]; !ok {
		return false
	}
	delete(m.members, id)
	m.rebuildLocked()
	return true
}

// rebuildLocked recomputes the ring from the current member set.
// Caller holds m.mu.
func (m *Membership) rebuildLocked() {
	ids := make([]string, 0, len(m.members))
	//lint:allow determinism NewRing sorts its member list
	for id := range m.members {
		ids = append(ids, id)
	}
	m.ring = NewRing(ids, m.vnodes)
	m.version++
}

// Ring returns the current ring. The returned value is immutable; hold
// it for one routing decision and re-fetch for the next.
func (m *Membership) Ring() *Ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

// Version reports the membership change counter (joins, drains, address
// moves). /v1/cluster exposes it so tests and operators can wait for
// "the ring settled" instead of sleeping.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Addr resolves a member ID to its base URL.
func (m *Membership) Addr(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mem, ok := m.members[id]
	if !ok {
		return "", false
	}
	return mem.addr, true
}

// Snapshot lists the members sorted by ID, with liveness rendered as
// relative ages.
func (m *Membership) Snapshot() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	ids := make([]string, 0, len(m.members))
	//lint:allow determinism keys are collected and sorted below
	for id := range m.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		mem := m.members[id]
		out = append(out, Member{
			ID:                    mem.id,
			Addr:                  mem.addr,
			AgeSeconds:            t.Sub(mem.joined).Seconds(),
			SinceHeartbeatSeconds: t.Sub(mem.lastSeen).Seconds(),
			Stats:                 mem.stats,
		})
	}
	return out
}
